"""Tests for the batch solver engine (core/batch.py and friends).

The engine's contract: evaluating a whole load grid in one NumPy pass gives
exactly the same numbers as looping the scalar solver over the grid —
identical finite/inf masks, matching values at every finite point — while
performing far fewer model solves in the saturation search.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    BatchSolution,
    ButterflyFatTreeModel,
    ConfigurationError,
    GeneralizedFatTreeModel,
    ModelVariant,
    Stage,
    Transition,
    Workload,
)
from repro.core import (
    latency_sweep,
    load_grid_to_saturation,
    saturation_injection_rate,
)
from repro.core.batch import as_injection_rates, charged_wait
from repro.core.generic_model import (
    ChannelGraphModel,
    bft_stage_graph,
    hypercube_stage_graph,
)
from repro.util.fixedpoint import fixed_point_batch


def _grid_past_saturation(n_points: int = 64, flits: int = 32) -> np.ndarray:
    """Injection rates spanning zero load to past N=1024 saturation."""
    return np.linspace(0.002, 0.05, n_points) / flits


class TestBftBatchEquivalence:
    def test_64_point_grid_matches_scalar_loop(self):
        model = ButterflyFatTreeModel(1024)
        rates = _grid_past_saturation()
        batch = model.latency_batch(rates, 32)
        scalar = np.array([model.latency(Workload(32, float(x))) for x in rates])
        finite = np.isfinite(scalar)
        # identical inf/finite masks ...
        assert np.array_equal(np.isfinite(batch), finite)
        assert finite.any() and (~finite).any()
        # ... and <= 1e-9 relative error at every finite point.
        rel = np.abs(batch[finite] - scalar[finite]) / scalar[finite]
        assert np.max(rel) <= 1e-9

    def test_one_point_batch_is_bit_identical_to_scalar(self):
        model = ButterflyFatTreeModel(256)
        wl = Workload.from_flit_load(0.03, 16)
        batch = model.latency_batch(np.array([wl.injection_rate]), 16)
        assert float(batch[0]) == model.latency(wl)

    def test_batch_matches_under_every_variant(self):
        rates = np.linspace(0.0001, 0.0012, 16)
        for variant in (
            ModelVariant.paper(),
            ModelVariant.no_multiserver(),
            ModelVariant.no_blocking_correction(),
            ModelVariant.naive(),
            ModelVariant.deterministic_scv(),
            ModelVariant.exponential_scv(),
            ModelVariant.conditional_up(),
        ):
            model = ButterflyFatTreeModel(256, variant)
            batch = model.latency_batch(rates, 32)
            scalar = np.array([model.latency(Workload(32, float(x))) for x in rates])
            assert np.array_equal(batch, scalar), variant.label

    def test_solve_batch_details_match_scalar_solution(self):
        model = ButterflyFatTreeModel(1024)
        rates = np.array([0.0002, 0.0008])
        batch = model.solve_batch(rates, 32)
        for k, rate in enumerate(rates):
            sol = model.solve(Workload(32, float(rate)))
            for name in ("rate", "down_service", "down_wait", "up_service", "up_wait"):
                assert np.array_equal(
                    batch.details[name][:, k], getattr(sol, name)
                ), name

    def test_stability_batch_matches_is_stable(self):
        model = ButterflyFatTreeModel(256)
        rates = _grid_past_saturation(24)
        mask = model.stability_batch(rates, 32)
        expected = np.array(
            [model.is_stable(Workload(32, float(x))) for x in rates]
        )
        assert np.array_equal(mask, expected)


class TestGeneralizedBatchEquivalence:
    @pytest.mark.parametrize("family", [(4, 2, 4), (4, 3, 3), (8, 2, 2), (2, 2, 6)])
    def test_batch_matches_scalar_loop(self, family):
        c, p, n = family
        model = GeneralizedFatTreeModel(c, p, n)
        rates = np.linspace(0.0, 0.02, 24)
        batch = model.latency_batch(rates, 32)
        scalar = np.array([model.latency(Workload(32, float(x))) for x in rates])
        assert np.array_equal(batch, scalar)


class TestGenericGraphBatch:
    def test_bft_graph_batch_matches_rebuilt_graphs(self):
        wl = Workload.from_flit_load(0.01, 32)
        graph = bft_stage_graph(256, wl)
        rates = np.linspace(0.0001, 0.0026, 12)
        batch = graph.latency_batch(rates)
        scalar = np.array(
            [bft_stage_graph(256, Workload(32, float(x))).latency() for x in rates]
        )
        finite = np.isfinite(scalar)
        assert np.array_equal(np.isfinite(batch), finite)
        rel = np.abs(batch[finite] - scalar[finite]) / scalar[finite]
        assert np.max(rel) <= 1e-9

    def test_hypercube_graph_batch(self):
        wl = Workload.from_flit_load(0.02, 16)
        graph = hypercube_stage_graph(6, wl)
        batch = graph.latency_batch(np.array([wl.injection_rate]))
        assert float(batch[0]) == graph.latency()

    def test_latency_batch_rejects_wrong_flits(self):
        graph = bft_stage_graph(64, Workload.from_flit_load(0.01, 32))
        with pytest.raises(ConfigurationError):
            graph.latency_batch(np.array([0.001]), message_flits=16)

    def test_latency_batch_rejects_zero_reference_rate(self):
        graph = bft_stage_graph(64, Workload(32, 0.0))
        with pytest.raises(ConfigurationError):
            graph.latency_batch(np.array([0.001]))

    def test_solve_is_cached_per_instance(self):
        graph = bft_stage_graph(64, Workload.from_flit_load(0.02, 32))
        calls = {"n": 0}
        original = type(graph).solve_batch

        def counting(self, scales):
            calls["n"] += 1
            return original(self, scales)

        type(graph).solve_batch = counting
        try:
            first = graph.solve()
            # latency() and injection_service() reuse the cached solution.
            graph.latency()
            graph.injection_service()
            assert graph.solve() is first
            assert calls["n"] == 1
        finally:
            type(graph).solve_batch = original


class TestCyclicGraphFixedPoint:
    """Coverage for the _solve_cyclic path (no ready-made builder is cyclic)."""

    @staticmethod
    def _ring_graph(rate: float, flits: int = 8) -> ChannelGraphModel:
        """Two mutually-dependent stages plus an ejection stage."""
        stages = [
            Stage("eject", rate_per_server=rate),
            Stage(
                "a",
                rate_per_server=rate,
                transitions=(
                    Transition("b", 0.5),
                    Transition("eject", 0.5),
                ),
            ),
            Stage(
                "b",
                rate_per_server=rate,
                transitions=(
                    Transition("a", 0.5),
                    Transition("eject", 0.5),
                ),
            ),
        ]
        return ChannelGraphModel(
            stages,
            message_flits=flits,
            entry="a",
            average_distance=2.5,
        )

    def test_graph_is_cyclic(self):
        assert not self._ring_graph(0.001).is_acyclic

    def test_low_load_converges_to_finite_latency(self):
        graph = self._ring_graph(0.001)
        latency = graph.latency()
        assert math.isfinite(latency)
        # Zero-load floor: service time >= message length, Eq. 2 pipeline term.
        assert latency >= 8 + 2.5 - 1.0

    def test_latency_increases_with_load(self):
        lats = [self._ring_graph(r).latency() for r in (0.0005, 0.002, 0.008)]
        assert lats == sorted(lats)
        assert all(math.isfinite(x) for x in lats)

    def test_saturated_ring_diverges(self):
        assert math.isinf(self._ring_graph(0.2).latency())

    def test_batch_matches_scalar_across_the_knee(self):
        reference = 0.002
        graph = self._ring_graph(reference)
        rates = np.array([0.0005, 0.002, 0.008, 0.2])
        batch = graph.latency_batch(rates)
        scalar = np.array([self._ring_graph(float(r)).latency() for r in rates])
        finite = np.isfinite(scalar)
        assert np.array_equal(np.isfinite(batch), finite)
        rel = np.abs(batch[finite] - scalar[finite]) / scalar[finite]
        assert np.max(rel) <= 1e-7  # fixed points agree to iteration tolerance


class TestFixedPointBatch:
    def test_freezes_diverging_columns_only(self):
        # Column 0 contracts to 1.0; column 1 blows up immediately.
        def step(x):
            out = np.empty_like(x)
            out[:, 0] = 0.5 * x[:, 0] + 0.5
            out[:, 1] = np.inf
            return out

        result = fixed_point_batch(step, np.ones((3, 2)), tol=1e-12)
        assert result.converged
        assert np.allclose(result.value[:, 0], 1.0)
        assert np.all(np.isinf(result.value[:, 1]))

    def test_matches_scalar_fixed_point_semantics_for_single_column(self):
        def step(x):
            return 0.5 * x + 1.0

        result = fixed_point_batch(step, np.zeros((1, 1)), tol=1e-12)
        assert result.value[0, 0] == pytest.approx(2.0, rel=1e-10)

    def test_rejects_non_matrix_input(self):
        with pytest.raises(ValueError):
            fixed_point_batch(lambda x: x, np.zeros(3))


class TestBatchSolutionType:
    def test_masks_and_units(self):
        model = ButterflyFatTreeModel(64)
        rates = np.array([0.001, 0.2])
        sol = model.solve_batch(rates, 16)
        assert isinstance(sol, BatchSolution)
        assert len(sol) == 2 and sol.n_points == 2
        assert np.array_equal(sol.flit_loads, rates * 16)
        assert sol.finite_mask.tolist() == [True, False]
        assert sol.saturated_mask.tolist() == [False, True]
        assert sol.stable_mask.tolist() == [True, False]

    def test_as_curve_round_trip(self):
        model = ButterflyFatTreeModel(64)
        sol = model.solve_batch(np.array([0.001, 0.002]), 16)
        curve = sol.as_curve("series")
        assert curve.label == "series"
        assert np.array_equal(curve.latencies, sol.latencies)
        assert sol.as_rows() == curve.as_rows()

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            BatchSolution(
                message_flits=16,
                injection_rates=np.array([0.1, 0.2]),
                injection_service=np.array([1.0]),
                injection_wait=np.array([0.0, 0.0]),
                latencies=np.array([1.0, 2.0]),
                average_distance=3.0,
            )

    def test_as_injection_rates_validation(self):
        assert as_injection_rates(0.01).tolist() == [0.01]
        with pytest.raises(ConfigurationError):
            as_injection_rates([])
        with pytest.raises(ConfigurationError):
            as_injection_rates([-0.1])
        with pytest.raises(ConfigurationError):
            as_injection_rates([np.inf])
        with pytest.raises(ConfigurationError):
            as_injection_rates([[0.1, 0.2]])

    def test_charged_wait_guards_zero_times_inf(self):
        p = np.array([0.0, 0.5])
        w = np.array([np.inf, np.inf])
        out = charged_wait(p, w)
        assert out[0] == 0.0 and np.isinf(out[1])

    def test_latency_batch_rejects_bad_flits(self):
        model = ButterflyFatTreeModel(64)
        with pytest.raises(ConfigurationError):
            model.latency_batch(np.array([0.001]), 0)


class TestSweepBatchDispatch:
    def test_model_object_and_bound_method_match_plain_callable(self):
        model = ButterflyFatTreeModel(256)
        loads = [0.01, 0.04, 0.08, 0.5]
        via_model = latency_sweep(model, 32, loads)
        via_method = latency_sweep(model.latency, 32, loads)
        via_lambda = latency_sweep(lambda wl: model.latency(wl), 32, loads)
        assert np.array_equal(via_model.latencies, via_lambda.latencies)
        assert np.array_equal(via_method.latencies, via_lambda.latencies)

    def test_scalar_fallback_supports_processes_and_chunks(self):
        model = ButterflyFatTreeModel(64)
        loads = list(np.linspace(0.01, 0.1, 8))
        serial = latency_sweep(lambda wl: model.latency(wl), 16, loads)
        fanned = latency_sweep(model.latency, 16, loads, processes=2, chunksize=3)
        assert np.array_equal(serial.latencies, fanned.latencies)


class TestVectorizedSaturation:
    class CountingModel(ButterflyFatTreeModel):
        """Counts batched solves — the unit of model work after the refactor."""

        def __init__(self, n):
            super().__init__(n)
            self.solve_calls = 0

        def solve_batch(self, rates, flits):
            self.solve_calls += 1
            return super().solve_batch(rates, flits)

    @pytest.mark.parametrize("n", [64, 256, 1024])
    def test_same_flit_load_with_fewer_solves(self, n):
        model = self.CountingModel(n)
        vectorized = saturation_injection_rate(model, 32)
        vectorized_solves = model.solve_calls
        model.solve_calls = 0
        scalar = saturation_injection_rate(model, 32, vectorized=False)
        scalar_solves = model.solve_calls
        assert vectorized.flit_load == pytest.approx(scalar.flit_load, rel=1e-6)
        assert vectorized_solves < scalar_solves

    def test_bracket_invariant_holds(self):
        model = ButterflyFatTreeModel(256)
        res = saturation_injection_rate(model, 32)
        assert res.lower_bound <= res.injection_rate <= res.upper_bound
        assert model.is_stable(Workload(32, res.lower_bound))
        assert not model.is_stable(Workload(32, res.upper_bound))
        assert (res.upper_bound - res.lower_bound) <= 1e-6 * res.upper_bound * 1.001

    def test_start_above_saturation_shrinks_down(self):
        model = ButterflyFatTreeModel(1024)
        res = saturation_injection_rate(model, 32, initial_rate=1.0)
        assert model.is_stable(Workload(32, res.lower_bound))

    def test_batchless_model_auto_detects_scalar_path(self):
        class PredicateOnly:
            def __init__(self, threshold):
                self.threshold = threshold

            def is_stable(self, workload):
                return workload.injection_rate < self.threshold

        model = PredicateOnly(0.01)
        res = saturation_injection_rate(model, 32)
        assert res.injection_rate == pytest.approx(0.01, rel=1e-5)

    def test_forced_vectorized_errors_when_unhonorable(self):
        class PredicateOnly:
            def is_stable(self, workload):
                return workload.injection_rate < 0.01

        with pytest.raises(ConfigurationError):
            saturation_injection_rate(PredicateOnly(), 32, vectorized=True)
        with pytest.raises(ConfigurationError):
            saturation_injection_rate(
                ButterflyFatTreeModel(64),
                32,
                vectorized=True,
                stable=lambda wl: wl.injection_rate < 0.01,
            )


class TestLoadGridPointCount:
    @pytest.mark.parametrize("include_zero_limit", [True, False])
    @pytest.mark.parametrize("n_points", [2, 6, 10])
    def test_always_honors_n_points(self, include_zero_limit, n_points):
        model = ButterflyFatTreeModel(64)
        grid = load_grid_to_saturation(
            model, 32, n_points=n_points, include_zero_limit=include_zero_limit
        )
        assert len(grid) == n_points
        assert np.all(np.diff(grid) > 0)
        assert np.all(grid > 0)

    def test_top_of_range_unchanged(self):
        model = ButterflyFatTreeModel(64)
        sat = saturation_injection_rate(model, 32).flit_load
        for flag in (True, False):
            grid = load_grid_to_saturation(
                model, 32, n_points=5, fraction=0.9, include_zero_limit=flag
            )
            assert grid[-1] == pytest.approx(0.9 * sat)
