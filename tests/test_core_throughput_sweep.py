"""Tests for the saturation solver (Eq. 26) and the load-sweep helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    ButterflyFatTreeModel,
    ConfigurationError,
    LatencyCurve,
    SaturatedError,
    Workload,
)
from repro.core import (
    latency_sweep,
    load_grid_to_saturation,
    saturation_flit_load,
    saturation_injection_rate,
)
from repro.core.blocking import blocking_probability


class TestBlockingProbability:
    def test_single_server_exact_form(self):
        # m=1: P = 1 - (lam_i/lam_j) R.
        assert blocking_probability(1, 0.01, 0.04, 0.25) == pytest.approx(1 - 0.0625)

    def test_disabled_returns_one(self):
        assert blocking_probability(2, 0.01, 0.02, 0.9, enabled=False) == 1.0

    def test_zero_outgoing_rate(self):
        assert blocking_probability(1, 0.0, 0.0, 0.5) == 1.0

    def test_clamped_to_unit_interval(self):
        assert blocking_probability(4, 0.5, 0.5, 1.0) == 0.0
        assert 0.0 <= blocking_probability(2, 0.1, 0.3, 0.5) <= 1.0

    def test_decreases_with_servers(self):
        p1 = blocking_probability(1, 0.01, 0.05, 0.5)
        p2 = blocking_probability(2, 0.01, 0.05, 0.5)
        assert p2 < p1

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            blocking_probability(0, 0.1, 0.1, 0.5)
        with pytest.raises(ConfigurationError):
            blocking_probability(1, -0.1, 0.1, 0.5)
        with pytest.raises(ConfigurationError):
            blocking_probability(1, 0.1, 0.1, 1.5)


class TestSaturation:
    def test_bracket_invariant(self):
        model = ButterflyFatTreeModel(256)
        res = saturation_injection_rate(model, 32)
        assert res.lower_bound <= res.injection_rate <= res.upper_bound
        assert model.is_stable(Workload(32, res.lower_bound))
        assert not model.is_stable(Workload(32, res.upper_bound))

    def test_bisection_tolerance(self):
        model = ButterflyFatTreeModel(64)
        res = saturation_injection_rate(model, 16, rel_tol=1e-8)
        assert (res.upper_bound - res.lower_bound) <= 1e-8 * res.upper_bound * 1.001

    def test_flit_load_consistency(self):
        model = ButterflyFatTreeModel(64)
        res = saturation_injection_rate(model, 32)
        assert res.flit_load == pytest.approx(res.injection_rate * 32)
        assert saturation_flit_load(model, 32) == pytest.approx(res.flit_load)

    def test_saturation_independent_of_message_length(self):
        # Structural scale-invariance: the model's saturation flit load is
        # identical across message lengths.
        model = ButterflyFatTreeModel(1024)
        sats = [saturation_flit_load(model, f) for f in (8, 16, 32, 64)]
        assert max(sats) - min(sats) < 1e-4 * max(sats)

    def test_saturation_decreases_with_size(self):
        sats = [
            saturation_flit_load(ButterflyFatTreeModel(n), 32)
            for n in (16, 64, 256, 1024)
        ]
        assert sats == sorted(sats, reverse=True)

    def test_figure3_saturation_region(self):
        # Figure 3's x-axis ends at 0.05 flits/cycle/PE with all curves
        # diverging inside the plot; the model's saturation must fall there.
        sat = saturation_flit_load(ButterflyFatTreeModel(1024), 16)
        assert 0.02 < sat < 0.05

    def test_starts_above_saturation(self):
        # Initial guess above saturation: the solver must shrink downwards.
        model = ButterflyFatTreeModel(1024)
        res = saturation_injection_rate(model, 32, initial_rate=1.0)
        assert model.is_stable(Workload(32, res.lower_bound))

    def test_workload_accessor(self):
        model = ButterflyFatTreeModel(64)
        res = saturation_injection_rate(model, 32)
        assert res.workload.message_flits == 32

    def test_never_stable_raises(self):
        class Never:
            def is_stable(self, workload):
                return False

        with pytest.raises(SaturatedError):
            saturation_injection_rate(Never(), 16)

    def test_always_stable_raises(self):
        class Always:
            def is_stable(self, workload):
                return True

        with pytest.raises(SaturatedError):
            saturation_injection_rate(Always(), 16)

    def test_rejects_bad_args(self):
        model = ButterflyFatTreeModel(16)
        with pytest.raises(ConfigurationError):
            saturation_injection_rate(model, 0)
        with pytest.raises(ConfigurationError):
            saturation_injection_rate(model, 16, rel_tol=0.0)
        with pytest.raises(ConfigurationError):
            saturation_injection_rate(model, 16, initial_rate=-1.0)


class TestSweep:
    def test_latency_sweep_matches_pointwise(self):
        model = ButterflyFatTreeModel(64)
        loads = [0.01, 0.05, 0.1]
        curve = latency_sweep(model.latency, 32, loads)
        for x, y in zip(loads, curve.latencies):
            assert y == pytest.approx(model.latency_at_flit_load(x, 32))

    def test_curve_finite_mask(self):
        model = ButterflyFatTreeModel(64)
        curve = latency_sweep(model.latency, 32, [0.01, 0.5])
        assert curve.finite_mask.tolist() == [True, False]
        assert curve.last_stable_load == pytest.approx(0.01)

    def test_curve_rows(self):
        model = ButterflyFatTreeModel(64)
        curve = latency_sweep(model.latency, 32, [0.01])
        rows = curve.as_rows()
        assert len(rows) == 1 and rows[0][0] == pytest.approx(0.01)

    def test_sweep_rejects_empty(self):
        model = ButterflyFatTreeModel(64)
        with pytest.raises(ConfigurationError):
            latency_sweep(model.latency, 32, [])

    def test_sweep_rejects_negative(self):
        model = ButterflyFatTreeModel(64)
        with pytest.raises(ConfigurationError):
            latency_sweep(model.latency, 32, [-0.01])

    def test_curve_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyCurve("x", 16, np.array([1.0, 2.0]), np.array([1.0]))

    def test_load_grid_to_saturation(self):
        model = ButterflyFatTreeModel(64)
        grid = load_grid_to_saturation(model, 32, n_points=6, fraction=0.9)
        sat = saturation_flit_load(model, 32)
        assert len(grid) == 6
        assert grid[-1] == pytest.approx(0.9 * sat)
        assert grid[0] == pytest.approx(0.02 * sat)
        assert np.all(np.diff(grid) > 0)
        # every grid point must be stable
        for x in grid:
            assert math.isfinite(model.latency_at_flit_load(float(x), 32))

    def test_load_grid_rejects_bad_args(self):
        model = ButterflyFatTreeModel(64)
        with pytest.raises(ConfigurationError):
            load_grid_to_saturation(model, 32, n_points=1)
        with pytest.raises(ConfigurationError):
            load_grid_to_saturation(model, 32, fraction=1.5)

    @pytest.mark.parametrize("n_points", [10, 50, 64, 200])
    def test_load_grid_strictly_increasing_when_dense(self, n_points):
        """Regression: dense grids used to start at 0.02*sat > grid[1]
        (e.g. n_points=64 yielded [0.020, 0.0156, ...])."""
        model = ButterflyFatTreeModel(64)
        grid = load_grid_to_saturation(model, 32, n_points=n_points)
        assert len(grid) == n_points
        assert np.all(np.diff(grid) > 0)
        assert grid[0] > 0.0
        sat = saturation_flit_load(model, 32)
        assert grid[0] <= 0.02 * sat + 1e-15
