"""Tests for the event-driven worm-level simulator."""

from __future__ import annotations

import math

import pytest

from repro import (
    ButterflyFatTree,
    Hypercube,
    SimConfig,
    TraceTraffic,
    Workload,
    simulate,
)
from repro.core.rates import bft_channel_rates
from repro.simulation.wormhole_sim import EventDrivenWormholeSimulator


def _trace_cfg(measure=200.0, seed=0):
    return SimConfig(warmup_cycles=0, measure_cycles=measure, seed=seed, drain_factor=100)


class TestSingleMessage:
    @pytest.mark.parametrize("src,dst", [(0, 1), (0, 5), (0, 63), (17, 42)])
    def test_latency_is_f_plus_d_minus_one(self, bft64, src, dst):
        flits = 16
        res = simulate(
            bft64,
            Workload(flits, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, src, dst)]),
        )
        assert res.tagged_delivered == 1
        assert res.latency_mean == flits + bft64.path_length(src, dst) - 1

    def test_hypercube_single_message(self, cube6):
        res = simulate(
            cube6,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 0, 63)]),
        )
        # path = 6 network hops + inject + eject = 8
        assert res.latency_mean == 16 + 8 - 1

    def test_nonzero_start_time(self, bft64):
        res = simulate(
            bft64,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(7.0, 0, 63)]),
        )
        assert res.latency_mean == 16 + 6 - 1  # latency independent of start


class TestPipelining:
    def test_same_source_messages_serialize(self, bft64):
        """Two messages from one PE: the second waits for the injection
        channel, which is held for exactly x = F cycles at zero contention
        beyond... the release of the injection link comes F cycles after
        the pipeline start."""
        flits = 16
        res = simulate(
            bft64,
            Workload(flits, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 0, 63), (0.0, 0, 62)]),
        )
        assert res.tagged_delivered == 2
        # First: F + D - 1 = 21. Second: injection link frees at t=16
        # (A + 0 + F with A=0), so it completes at 16 + 21 = 37.
        assert res.latency_max == pytest.approx(37.0)
        assert res.latency_min == pytest.approx(21.0)

    def test_disjoint_paths_do_not_interact(self, bft64):
        res = simulate(
            bft64,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 0, 1), (0.0, 4, 5)]),
        )
        assert res.latency_min == res.latency_max == 16 + 2 - 1

    def test_contention_for_shared_ejection_link(self, bft64):
        """Two simultaneous messages to the same destination: FCFS at the
        ejection channel; the loser waits for the winner's full service."""
        res = simulate(
            bft64,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 1, 0), (0.0, 2, 0)]),
        )
        lats = sorted([res.latency_min, res.latency_max])
        assert lats[0] == pytest.approx(17.0)  # F + 2 - 1
        # Loser: ejection link freed at A+1+F = 17... it waited blocked at
        # the level-1 switch; completes at 17 (grant) + 16 = 33 -> latency 33.
        assert lats[1] == pytest.approx(33.0)


class TestConservation:
    def test_all_generated_delivered_below_saturation(self, bft64):
        wl = Workload.from_flit_load(0.05, 16)
        cfg = SimConfig(warmup_cycles=500, measure_cycles=4000, seed=3)
        res = simulate(bft64, wl, cfg)
        assert res.censored_tagged == 0
        assert res.tagged_delivered == res.tagged_generated
        assert res.stable

    def test_throughput_tracks_offered_load(self, bft64):
        wl = Workload.from_flit_load(0.06, 16)
        cfg = SimConfig(warmup_cycles=1000, measure_cycles=8000, seed=4)
        res = simulate(bft64, wl, cfg)
        assert res.delivered_flit_rate == pytest.approx(0.06, rel=0.1)

    def test_class_rates_match_eq14(self, bft64):
        lam0 = 0.004
        cfg = SimConfig(warmup_cycles=1000, measure_cycles=15000, seed=5)
        res = simulate(bft64, Workload(16, lam0), cfg)
        expected = bft_channel_rates(3, lam0)
        for l in range(3):
            up = res.class_stats[f"<{l},{l+1}>"].rate_per_link(cfg.measure_cycles)
            down = res.class_stats[f"<{l+1},{l}>"].rate_per_link(cfg.measure_cycles)
            assert up == pytest.approx(expected[l], rel=0.08)
            assert down == pytest.approx(expected[l], rel=0.08)

    def test_no_short_worms_when_long_enough(self, bft64):
        wl = Workload.from_flit_load(0.03, 16)  # F=16 > max path 6
        cfg = SimConfig(warmup_cycles=500, measure_cycles=3000, seed=6)
        res = simulate(bft64, wl, cfg)
        assert res.short_worm_fraction == 0.0

    def test_short_worm_fraction_reported(self, bft256):
        wl = Workload.from_flit_load(0.01, 4)  # F=4 < typical path length
        cfg = SimConfig(warmup_cycles=500, measure_cycles=3000, seed=7)
        res = simulate(bft256, wl, cfg)
        assert res.short_worm_fraction > 0.5


class TestSaturationBehaviour:
    def test_overload_is_flagged_unstable(self, bft64):
        wl = Workload.from_flit_load(0.5, 16)  # ~3x saturation
        cfg = SimConfig(warmup_cycles=500, measure_cycles=3000, seed=8, drain_factor=1.5)
        res = simulate(bft64, wl, cfg)
        assert not res.stable
        assert res.censored_tagged > 0
        assert res.delivered_flit_rate < 0.5

    def test_zero_load_run_is_stable(self, bft16):
        cfg = SimConfig(warmup_cycles=100, measure_cycles=500, seed=9)
        res = simulate(bft16, Workload(16, 0.0), cfg)
        assert res.stable
        assert res.generated_total == 0


class TestDeterminism:
    def test_same_seed_same_result(self, bft64):
        wl = Workload.from_flit_load(0.08, 16)
        cfg = SimConfig(warmup_cycles=500, measure_cycles=3000, seed=77)
        r1 = simulate(bft64, wl, cfg)
        r2 = simulate(bft64, wl, cfg)
        assert r1.latency_mean == r2.latency_mean
        assert r1.tagged_delivered == r2.tagged_delivered

    def test_different_seeds_differ(self, bft64):
        wl = Workload.from_flit_load(0.08, 16)
        r1 = simulate(bft64, wl, SimConfig(warmup_cycles=500, measure_cycles=3000, seed=1))
        r2 = simulate(bft64, wl, SimConfig(warmup_cycles=500, measure_cycles=3000, seed=2))
        assert r1.latency_mean != r2.latency_mean


class TestResultFields:
    def test_percentiles_ordered(self, bft64):
        wl = Workload.from_flit_load(0.08, 16)
        cfg = SimConfig(warmup_cycles=500, measure_cycles=4000, seed=10)
        res = simulate(bft64, wl, cfg)
        assert res.latency_min <= res.latency_p50 <= res.latency_p95 <= res.latency_max

    def test_keep_samples_false_drops_percentiles(self, bft64):
        wl = Workload.from_flit_load(0.08, 16)
        cfg = SimConfig(warmup_cycles=500, measure_cycles=2000, seed=11)
        res = EventDrivenWormholeSimulator(bft64, wl, cfg, keep_samples=False).run()
        assert math.isnan(res.latency_p50)
        assert not math.isnan(res.latency_mean)

    def test_summary_string(self, bft16):
        cfg = SimConfig(warmup_cycles=100, measure_cycles=1000, seed=12)
        res = simulate(bft16, Workload.from_flit_load(0.05, 16), cfg)
        s = res.summary()
        assert "latency" in s and "throughput" in s

    def test_offered_rate_property(self, bft16):
        cfg = SimConfig(warmup_cycles=100, measure_cycles=1000, seed=13)
        res = simulate(bft16, Workload.from_flit_load(0.05, 16), cfg)
        assert res.offered_flit_rate == pytest.approx(0.05)
