"""Tests for the observability layer: metrics, tracing, and telemetry plumbing."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.design.families import design_family
from repro.faults import FaultSpec
from repro.obs import (
    METRICS,
    MetricsRegistry,
    Tracer,
    current_tracer,
    trace_span,
    tracing,
)
from repro.runs import RunResult, Runner, Scenario, collect_stats


def tiny_scenario(**overrides) -> Scenario:
    defaults = dict(
        num_processors=16,
        message_flits=16,
        flit_load=0.04,
        sweep_points=0,
        seed=11,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestMetricsRegistry:
    def test_disabled_is_a_no_op(self):
        reg = MetricsRegistry()
        reg.add("c")
        reg.gauge("g", 3.0)
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}

    def test_enabled_records(self):
        reg = MetricsRegistry(enabled=True)
        reg.add("c")
        reg.add("c", 2.0)
        reg.gauge("g", 1.0)
        reg.gauge("g", 4.0)  # gauges keep the latest value
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 4.0}
        h = snap["histograms"]["h"]
        assert h == {"count": 3, "total": 6, "mean": 2.0, "min": 1, "max": 3}

    def test_span_histograms_split_into_spans_block(self):
        reg = MetricsRegistry(enabled=True)
        reg.observe("span/run/build", 0.25)
        reg.observe("span/run/build", 0.75)
        snap = reg.snapshot()
        assert snap["histograms"] == {}
        s = snap["spans"]["run/build"]
        assert s["count"] == 2
        assert s["total_s"] == pytest.approx(1.0)
        assert s["mean_s"] == pytest.approx(0.5)
        assert s["max_s"] == pytest.approx(0.75)

    def test_collect_scopes_and_restores(self):
        reg = MetricsRegistry()  # disabled outside the scope
        with reg.collect() as got:
            assert reg.enabled
            reg.add("inside")
        assert not reg.enabled
        assert got.data["counters"] == {"inside": 1}
        reg.add("after")  # disabled again: must not record
        assert reg.snapshot()["counters"] == {}

    def test_collect_merges_back_into_recording_outer(self):
        reg = MetricsRegistry(enabled=True)
        reg.add("c")
        reg.observe("h", 5.0)
        with reg.collect() as got:
            reg.add("c", 2.0)
            reg.observe("h", 1.0)
        assert got.data["counters"] == {"c": 2}
        outer = reg.snapshot()
        assert outer["counters"] == {"c": 3}
        assert outer["histograms"]["h"]["count"] == 2
        assert outer["histograms"]["h"]["min"] == 1
        assert outer["histograms"]["h"]["max"] == 5

    def test_collect_nests(self):
        reg = MetricsRegistry()
        with reg.collect() as outer:
            reg.add("c")
            with reg.collect() as inner:
                reg.add("c")
            assert inner.data["counters"] == {"c": 1}
        assert outer.data["counters"] == {"c": 2}

    def test_reset_keeps_enabled_flag(self):
        reg = MetricsRegistry(enabled=True)
        reg.add("c")
        reg.reset()
        assert reg.enabled
        assert reg.snapshot()["counters"] == {}


class TestMetricsThreadSafety:
    """The REP202 fix: concurrent recording must never lose an event.

    Before the lock, eight threads doing read-modify-write on the same
    counter dict dropped increments, and a pool-thread ``collect()`` could
    tear a scope another thread held open (the registry swapped the shared
    dicts).  These tests pin exact totals under both shapes.
    """

    THREADS = 8
    PER_THREAD = 4000

    def test_eight_threads_exact_counter_totals(self):
        import threading

        reg = MetricsRegistry(enabled=True)
        start = threading.Barrier(self.THREADS)

        def hammer():
            start.wait()
            for i in range(self.PER_THREAD):
                reg.add("c")
                reg.add("weighted", 0.5)
                reg.observe("h", float(i % 7))

        workers = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        snap = reg.snapshot()
        total = self.THREADS * self.PER_THREAD
        assert snap["counters"]["c"] == total
        assert snap["counters"]["weighted"] == pytest.approx(0.5 * total)
        assert snap["histograms"]["h"]["count"] == total
        assert snap["histograms"]["h"]["min"] == 0
        assert snap["histograms"]["h"]["max"] == 6

    def test_pool_thread_collect_scopes_conserve_totals(self):
        """Concurrent per-thread scopes inside one outer scope: every event
        lands somewhere, and everything folds into the outer scope."""
        import threading

        reg = MetricsRegistry()  # disabled: only scopes force it on
        start = threading.Barrier(self.THREADS)
        own_counts: list[float] = []
        lock = threading.Lock()

        def solve_like():
            start.wait()
            with reg.collect() as mine:
                for _ in range(self.PER_THREAD):
                    reg.add("solve.step")
            with lock:
                own_counts.append(mine.data["counters"]["solve.step"])

        with reg.collect() as outer:
            workers = [
                threading.Thread(target=solve_like) for _ in range(self.THREADS)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        total = self.THREADS * self.PER_THREAD
        assert outer.data["counters"]["solve.step"] == total
        # Each scope saw at least its own events (a sibling closing while
        # it was the newest open scope may fold extras in, never out).
        assert len(own_counts) == self.THREADS
        assert all(c >= self.PER_THREAD for c in own_counts)
        assert not reg.enabled
        assert reg.snapshot()["counters"] == {}


class TestTracer:
    def test_deterministic_clock_gives_exact_timestamps(self):
        ticks = iter([10.0, 11.0, 12.5])
        tracer = Tracer(clock=lambda: next(ticks))  # origin reads 10.0
        with tracing(tracer):
            with trace_span("solve/fixed_point", points=4):
                pass
        (event,) = tracer.events
        assert event["name"] == "solve/fixed_point"
        assert event["cat"] == "solve"
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1e6)
        assert event["dur"] == pytest.approx(1.5e6)
        assert event["args"] == {"points": 4}

    def test_to_json_is_chrome_trace_format(self):
        tracer = Tracer()
        tracer.record("run/build", tracer.origin, tracer.origin + 0.1)
        data = tracer.to_json()
        assert data["displayTimeUnit"] == "ms"
        assert data["otherData"]["trace_unix_time"] > 0
        (event,) = data["traceEvents"]
        assert event["ph"] == "X" and event["dur"] >= 0

    def test_write_creates_parent_dirs(self, tmp_path):
        tracer = Tracer()
        tracer.record("run/build", tracer.origin, tracer.origin + 0.1)
        out = tracer.write(tmp_path / "deep" / "trace.json")
        loaded = json.loads(out.read_text())
        assert [e["name"] for e in loaded["traceEvents"]] == ["run/build"]

    def test_tracing_installs_and_restores(self):
        assert current_tracer() is None
        with tracing() as tracer:
            assert current_tracer() is tracer
            with tracing() as inner:
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_trace_span_is_shared_null_when_unobserved(self):
        # No active tracer, metrics disabled: the span must be the shared
        # no-op object — the disabled-by-default overhead contract.
        assert not METRICS.enabled
        assert trace_span("a") is trace_span("b", arg=1)

    def test_spans_feed_metrics_without_a_tracer(self):
        with METRICS.collect() as got:
            with trace_span("solve/stage_graph"):
                pass
        assert got.data["spans"]["solve/stage_graph"]["count"] == 1


class TestRunTelemetry:
    def test_run_result_carries_observability_block(self):
        r = Runner().run(tiny_scenario())
        obs = r.metrics["observability"]
        assert obs["counters"]["solve.batch"] >= 1
        assert obs["counters"]["solve.points"] >= 1
        for name in ("run/batch", "run/build", "run/saturation", "run/evaluate"):
            assert name in obs["spans"], name
        assert RunResult.from_json(r.to_json()) == r

    def test_observability_block_round_trips_non_finite(self):
        r = RunResult.for_metrics(
            {
                "observability": {
                    "counters": {"fixed_point.exhausted": 1},
                    "gauges": {"design.cache.latency_entries": 12},
                    "histograms": {
                        "fixed_point.residual": {
                            "count": 2,
                            "total": math.inf,
                            "mean": math.inf,
                            "min": 0.5,
                            "max": math.inf,
                        },
                        "weird": {
                            "count": 1,
                            "total": math.nan,
                            "mean": math.nan,
                            "min": math.nan,
                            "max": math.nan,
                        },
                    },
                    "spans": {"run/build": {"count": 1, "total_s": 0.1,
                                            "mean_s": 0.1, "max_s": 0.1}},
                }
            },
            kind="bench",
        )
        back = RunResult.from_json(r.to_json())
        assert back == r
        h = back.metrics["observability"]["histograms"]
        assert h["fixed_point.residual"]["total"] == math.inf
        assert math.isnan(h["weird"]["mean"])

    def test_model_and_batch_backends_report_identical_counters(self):
        # At sweep_points=0 both backends perform the same one-point solve
        # plus the same backend-invariant saturation search, so the solver
        # counters must match exactly (span durations obviously differ).
        sc = tiny_scenario(topology="hypercube")
        results = {}
        for backend in ("model", "batch"):
            obs = Runner().run(sc.with_backend(backend)).metrics["observability"]
            results[backend] = obs
        assert results["model"]["counters"] == results["batch"]["counters"]
        model_hist = results["model"]["histograms"]
        batch_hist = results["batch"]["histograms"]
        assert sorted(model_hist) == sorted(batch_hist)
        for name in model_hist:
            assert model_hist[name]["count"] == batch_hist[name]["count"], name

    def test_faulted_torus_records_fixed_point_telemetry(self):
        # The fault-masked torus stage graph is cyclic, so the solver runs
        # the fixed-point iteration and its convergence telemetry must land
        # in the collected scope (one cheap one-point solve; the full
        # near-saturation run is exercised by the CI obs-smoke job).
        fam = design_family("kary-ncube")
        evaluator = fam.faulted_evaluator(
            {"radix": 3, "dimensions": 2},
            None,
            16,
            FaultSpec(dead_links=("up:0:1",)),
        )
        with METRICS.collect() as got:
            latency = float(
                np.asarray(evaluator.latency_batch(np.array([0.04 / 16]), 16))[0]
            )
        assert latency > 0
        counters = got.data["counters"]
        assert counters["fixed_point.solves"] >= 1
        hist = got.data["histograms"]
        assert hist["fixed_point.iterations"]["count"] >= 1
        assert hist["fixed_point.residual"]["max"] >= 0
        assert "solve/fixed_point" in got.data["spans"]
        assert "solve/stage_graph" in got.data["spans"]


class TestStats:
    def _record(self, counters=None, spans=None, histograms=None):
        obs = {
            "counters": counters or {},
            "gauges": {},
            "histograms": histograms or {},
            "spans": spans or {},
        }
        return RunResult.for_metrics({"observability": obs}, kind="bench")

    def test_collect_stats_aggregates(self):
        records = [
            self._record(
                counters={"solve.batch": 2},
                histograms={"fixed_point.iterations":
                            {"count": 2, "total": 10, "mean": 5, "min": 3, "max": 7}},
                spans={"run/build": {"count": 1, "total_s": 0.2,
                                     "mean_s": 0.2, "max_s": 0.2}},
            ),
            self._record(
                counters={"solve.batch": 3, "design.solves": 1},
                histograms={"fixed_point.iterations":
                            {"count": 1, "total": 20, "mean": 20,
                             "min": 20, "max": 20}},
                spans={"run/build": {"count": 2, "total_s": 0.4,
                                     "mean_s": 0.2, "max_s": 0.3}},
            ),
            RunResult.for_metrics({"no": "telemetry"}, kind="bench"),
        ]
        report = collect_stats(records, source="unit")
        assert report.runs == 3
        assert report.instrumented == 2
        assert report.counters["solve.batch"] == {"total": 5.0, "runs": 2.0}
        assert report.counters["design.solves"]["runs"] == 1.0
        h = report.histograms["fixed_point.iterations"]
        assert h["count"] == 3.0 and h["min"] == 3.0 and h["max"] == 20.0
        assert h["mean"] == pytest.approx(10.0)
        s = report.spans["run/build"]
        assert s["count"] == 3.0
        assert s["total_s"] == pytest.approx(0.6)
        assert s["max_s"] == pytest.approx(0.3)
        assert s["mean_s"] == pytest.approx(0.2)
        text = report.render()
        assert "solve.batch" in text and "run/build" in text
        assert report.to_json()["instrumented"] == 2

    def test_collect_stats_skips_malformed_blocks(self):
        records = [
            RunResult.for_metrics({"observability": "not-a-mapping"}, kind="bench"),
            self._record(counters={"ok": 1, "bad": "nope"}),
        ]
        report = collect_stats(records)
        assert report.instrumented == 1
        assert list(report.counters) == ["ok"]

    def test_render_notes_missing_telemetry(self):
        report = collect_stats([RunResult.for_metrics({}, kind="bench")])
        assert "no observability blocks" in report.render()


class TestObsCli:
    def test_run_trace_writes_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        code = main(
            ["run", "--topology", "bft", "-n", "16", "--points", "0",
             "--trace", str(trace_path)]
        )
        assert code == 0
        capsys.readouterr()
        data = json.loads(trace_path.read_text())
        assert data["displayTimeUnit"] == "ms"
        names = {e["name"] for e in data["traceEvents"]}
        assert {"run/build", "run/saturation", "run/evaluate"} <= names
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in data["traceEvents"])

    def test_run_table_shows_phase_timings(self, capsys):
        from repro.cli import main

        assert main(["run", "--topology", "bft", "-n", "16", "--points", "0"]) == 0
        out = capsys.readouterr().out
        for key in ("time.build_s", "time.saturation_s", "time.evaluate_s",
                    "time.total_s"):
            assert key in out, key

    def test_runs_stats_cli(self, tmp_path, capsys):
        from repro.cli import main

        registry = str(tmp_path)
        assert (
            main(["run", "--topology", "bft", "-n", "16", "--points", "0",
                  "--save", "--registry", registry])
            == 0
        )
        capsys.readouterr()
        assert main(["runs", "stats", "--registry", registry]) == 0
        out = capsys.readouterr().out
        assert "1 with telemetry" in out
        assert "solve.batch" in out
        assert main(["runs", "stats", "--registry", registry, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["solve.batch"]["runs"] == 1
