"""Tests for the design-space exploration subsystem (:mod:`repro.design`)."""

from __future__ import annotations

import json
import math
import time

import pytest

from repro import ButterflyFatTreeModel, Workload
from repro.core import saturation_injection_rate
from repro.design import (
    PORT_COUNT_COST,
    Candidate,
    DesignSpace,
    FamilySpace,
    LinearCostModel,
    Objective,
    Requirements,
    available_families,
    bft_space,
    clear_metrics_cache,
    design_family,
    explore,
    generalized_fattree_space,
    hypercube_space,
    kary_ncube_space,
    metrics_cache_size,
    pareto_frontier,
)
from repro.errors import ConfigurationError
from repro.traffic.spec import HotspotSpec, TransposeSpec, UniformSpec


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts from a cold metrics memo."""
    clear_metrics_cache()
    yield
    clear_metrics_cache()


def small_requirements(**overrides) -> Requirements:
    defaults = dict(demand_flit_load=0.02, latency_slo=75.0)
    defaults.update(overrides)
    return Requirements(**defaults)


class TestFamilies:
    def test_registry(self):
        assert set(available_families()) >= {
            "bft",
            "generalized-fattree",
            "hypercube",
            "kary-ncube",
        }
        with pytest.raises(ConfigurationError):
            design_family("nope")

    def test_bft_validation(self):
        fam = design_family("bft")
        with pytest.raises(ConfigurationError):
            fam.validate({"processors": 100})
        with pytest.raises(ConfigurationError):
            fam.validate({"size": 16})
        assert fam.num_processors({"processors": 64}) == 64

    def test_hardware_matches_topology(self, bft64):
        hw = design_family("bft").hardware({"processors": 64})
        assert hw.switches == bft64.num_nodes - 64
        assert hw.links == bft64.num_links
        assert hw.ports == 2 * bft64.num_links - 2 * 64

    def test_hardware_scales_with_size(self):
        fam = design_family("bft")
        small = fam.hardware({"processors": 16})
        big = fam.hardware({"processors": 256})
        assert big.switches > small.switches
        assert big.links > small.links
        assert big.ports > small.ports

    def test_uniform_evaluator_is_closed_form(self):
        model = design_family("bft").evaluator({"processors": 64}, UniformSpec(), 16)
        assert isinstance(model, ButterflyFatTreeModel)

    def test_pattern_rejected_on_uniform_only_family(self):
        fam = design_family("kary-ncube")
        with pytest.raises(ConfigurationError):
            fam.evaluator({"radix": 4, "dimensions": 2}, HotspotSpec(), 16)

    def test_size_mapping(self):
        assert design_family("bft").sizes_to_params(256) == {"processors": 256}
        assert design_family("bft").sizes_to_params(100) is None
        assert design_family("hypercube").sizes_to_params(64) == {"dimension": 6}
        assert design_family("hypercube").sizes_to_params(48) is None


class TestSpace:
    def test_expansion_counts(self):
        space = DesignSpace(
            families=(bft_space((16, 64)),),
            message_lengths=(16, 32),
            patterns=("uniform",),
            buffer_depths=(1, 4),
        )
        expansion = space.expand()
        assert len(expansion.candidates) == 2 * 2 * 2
        assert expansion.skipped == ()
        assert space.size == 8

    def test_single_family_space_promoted(self):
        space = DesignSpace(families=bft_space((16,)), message_lengths=(16,))
        assert len(space.candidates()) == 1

    def test_pattern_names_resolved(self):
        space = DesignSpace(
            families=(bft_space((16,)),),
            message_lengths=(16,),
            patterns=("uniform", "hotspot"),
        )
        assert {s.name for s in space.patterns} == {"uniform", "hotspot"}

    def test_unsupported_pattern_is_skipped_not_dropped(self):
        space = DesignSpace(
            families=(kary_ncube_space((4,), (2,)),),
            message_lengths=(16,),
            patterns=("uniform", "hotspot"),
        )
        expansion = space.expand()
        assert len(expansion.candidates) == 1
        assert len(expansion.skipped) == 1
        assert "pattern-aware" in expansion.skipped[0].reason

    def test_pattern_size_incompatibility_is_skipped(self):
        # transpose needs an even power of two: dimension 5 (N=32) skips.
        space = DesignSpace(
            families=(hypercube_space((4, 5)),),
            message_lengths=(16,),
            patterns=(TransposeSpec(),),
        )
        expansion = space.expand()
        assert len(expansion.candidates) == 1
        assert len(expansion.skipped) == 1
        assert "rejects N=32" in expansion.skipped[0].reason

    def test_invalid_family_parameters_raise(self):
        # Value validation is structural, so expansion raises (not a skip).
        space = DesignSpace(families=(bft_space((100,)),), message_lengths=(16,))
        with pytest.raises(ConfigurationError):
            space.expand()

    def test_family_space_rejects_bad_axes(self):
        with pytest.raises(ConfigurationError):
            FamilySpace.build("bft", processors=())
        with pytest.raises(ConfigurationError):
            FamilySpace.build("bft", processors=(16, 16))
        with pytest.raises(ConfigurationError):
            FamilySpace.build("bft", sizes=(16,))

    def test_candidate_label_and_params(self):
        c = Candidate("bft", (("processors", 64),), 32, HotspotSpec(), buffer_depth=4)
        assert c.num_processors == 64
        assert c.pattern == "hotspot"
        assert "b=4" in c.label() and "f=32" in c.label()


class TestCost:
    def test_linear_cost_arithmetic(self):
        fam = design_family("bft")
        hw = fam.hardware({"processors": 16})
        model = LinearCostModel(
            switch_cost=10.0, link_cost=1.0, port_cost=2.0, buffer_flit_cost=0.5
        )
        c = Candidate("bft", (("processors", 16),), 16, UniformSpec(), buffer_depth=8)
        breakdown = model.cost(c, hw)
        assert breakdown.switches == 10.0 * hw.switches
        assert breakdown.links == 1.0 * hw.links
        assert breakdown.ports == 2.0 * hw.ports
        assert breakdown.buffers == 0.5 * hw.ports * 8
        assert breakdown.total == pytest.approx(
            breakdown.switches + breakdown.links + breakdown.ports + breakdown.buffers
        )

    def test_port_count_cost(self):
        hw = design_family("bft").hardware({"processors": 16})
        c = Candidate("bft", (("processors", 16),), 16, UniformSpec())
        assert PORT_COUNT_COST.cost(c, hw).total == hw.ports

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearCostModel(switch_cost=-1.0)

    def test_buffer_depth_changes_cost_not_metrics(self):
        space = DesignSpace(
            families=(bft_space((16,)),),
            message_lengths=(16,),
            buffer_depths=(1, 8),
        )
        result = explore(space, small_requirements())
        shallow, deep = result.evaluations
        assert shallow.metrics == deep.metrics
        assert deep.cost.total > shallow.cost.total
        # One metric evaluation served both candidates.
        assert metrics_cache_size() == 1


class TestPareto:
    def test_dominated_points_removed(self):
        items = [(1.0, 1.0), (2.0, 2.0), (1.0, 2.0)]
        frontier = pareto_frontier(
            items,
            (Objective(lambda p: p[0], "min"), Objective(lambda p: p[1], "min")),
        )
        assert frontier == ((1.0, 1.0),)

    def test_maximize_axis(self):
        items = [(1.0, 1.0), (1.0, 3.0), (2.0, 5.0)]
        frontier = pareto_frontier(
            items,
            (Objective(lambda p: p[0], "min"), Objective(lambda p: p[1], "max")),
        )
        assert (1.0, 3.0) in frontier and (2.0, 5.0) in frontier
        assert (1.0, 1.0) not in frontier

    def test_nonfinite_points_excluded(self):
        items = [(math.inf, 0.0), (1.0, 1.0)]
        frontier = pareto_frontier(
            items,
            (Objective(lambda p: p[0], "min"), Objective(lambda p: p[1], "min")),
        )
        assert frontier == ((1.0, 1.0),)

    def test_ties_all_survive(self):
        items = [("a", 1.0), ("b", 1.0)]
        frontier = pareto_frontier(items, (Objective(lambda p: p[1], "min"),))
        assert len(frontier) == 2

    def test_bad_sense_rejected(self):
        with pytest.raises(ConfigurationError):
            Objective(lambda p: p, "down")


class TestRequirements:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Requirements(demand_flit_load=0.0, latency_slo=10.0)
        with pytest.raises(ConfigurationError):
            Requirements(demand_flit_load=0.02, latency_slo=0.0)
        with pytest.raises(ConfigurationError):
            Requirements(demand_flit_load=0.02, latency_slo=10.0, min_headroom=-1.0)
        with pytest.raises(ConfigurationError):
            Requirements(demand_flit_load=0.02, latency_slo=10.0, max_cost=0.0)

    def test_violation_clauses(self):
        req = Requirements(
            demand_flit_load=0.02, latency_slo=50.0, min_headroom=2.0, max_cost=100.0
        )
        assert req.violations(40.0, 3.0, 50.0) == ()
        assert any("SLO" in v for v in req.violations(60.0, 3.0, 50.0))
        assert any("headroom" in v for v in req.violations(40.0, 1.0, 50.0))
        assert any("budget" in v for v in req.violations(40.0, 3.0, 500.0))
        # Saturated latency always violates the SLO clause.
        assert any("SLO" in v for v in req.violations(math.inf, 3.0, 50.0))


class TestExplore:
    def test_agreement_with_legacy_scalar_loop(self):
        """The explorer must reproduce the old capacity_planning.py result.

        The legacy example hand-rolled a scalar loop — one ``latency`` call
        and one ``saturation_injection_rate`` per (N, flits) pair, then
        ``max(feasible)`` over the (N, flits) tuples.  The explorer's
        ``largest_feasible`` must select the same configuration.
        """
        budget, demand = 75.0, 0.02
        sizes, lengths = (16, 64, 256), (16, 32, 64)

        feasible: list[tuple[int, int]] = []
        for n in sizes:
            model = ButterflyFatTreeModel(n)
            for flits in lengths:
                wl = Workload.from_flit_load(demand, flits)
                latency = model.latency(wl)
                if math.isfinite(latency) and latency <= budget:
                    feasible.append((n, flits))
        legacy = max(feasible)

        space = DesignSpace(families=(bft_space(sizes),), message_lengths=lengths)
        result = explore(
            space, Requirements(demand_flit_load=demand, latency_slo=budget)
        )
        largest = result.largest_feasible()
        assert largest is not None
        assert (
            largest.candidate.num_processors,
            largest.candidate.message_flits,
        ) == legacy
        # And the per-pair feasibility sets agree exactly.
        explored = sorted(
            (e.candidate.num_processors, e.candidate.message_flits)
            for e in result.feasible
        )
        assert explored == sorted(feasible)

    def test_latency_matches_direct_model(self):
        space = DesignSpace(families=(bft_space((64,)),), message_lengths=(32,))
        req = small_requirements()
        result = explore(space, req)
        (ev,) = result.evaluations
        model = ButterflyFatTreeModel(64)
        assert ev.latency == pytest.approx(
            model.latency(Workload.from_flit_load(req.demand_flit_load, 32))
        )
        sat = saturation_injection_rate(model, 32).flit_load
        assert ev.saturation_flit_load == pytest.approx(sat, rel=1e-5)
        assert ev.headroom == pytest.approx(sat / req.demand_flit_load, rel=1e-5)

    def test_memoization_across_calls(self):
        space = DesignSpace(
            families=(bft_space((16, 64)),), message_lengths=(16, 32)
        )
        explore(space, small_requirements())
        size_after_first = metrics_cache_size()
        assert size_after_first == 4
        t0 = time.perf_counter()
        explore(space, small_requirements())
        assert metrics_cache_size() == size_after_first
        assert time.perf_counter() - t0 < 0.5

    def test_demand_sweep_reuses_saturation(self):
        """A new demand re-runs only latency solves, not saturation searches."""
        from repro.design import evaluate

        space = DesignSpace(
            families=(bft_space((16, 64)),), message_lengths=(16,)
        )
        first = explore(space, small_requirements(demand_flit_load=0.02))
        sat_entries = len(evaluate._SATURATION_CACHE)
        second = explore(space, small_requirements(demand_flit_load=0.03))
        # Saturation (demand-independent) was not recomputed or re-keyed...
        assert len(evaluate._SATURATION_CACHE) == sat_entries
        # ...while each demand point has its own latency entries.
        assert metrics_cache_size() == 2 * sat_entries
        for a, b in zip(first.evaluations, second.evaluations):
            assert a.saturation_flit_load == b.saturation_flit_load
            assert a.headroom > b.headroom  # higher demand, less headroom
            assert b.latency > a.latency

    def test_parallel_matches_serial(self):
        space = DesignSpace(
            families=(bft_space((16, 64)), hypercube_space((4,))),
            message_lengths=(16,),
            patterns=("uniform", "hotspot"),
        )
        serial = explore(space, small_requirements())
        clear_metrics_cache()
        parallel = explore(space, small_requirements(), processes=2)
        assert len(serial.evaluations) == len(parallel.evaluations)
        for a, b in zip(serial.evaluations, parallel.evaluations):
            assert a.candidate == b.candidate
            assert a.latency == pytest.approx(b.latency, rel=1e-12)
            assert a.saturation_flit_load == pytest.approx(
                b.saturation_flit_load, rel=1e-9
            )

    def test_cheapest_feasible_and_budget(self):
        space = DesignSpace(
            families=(bft_space((16, 64)),), message_lengths=(16,)
        )
        result = explore(space, small_requirements())
        cheapest = result.cheapest_feasible
        assert cheapest is not None
        assert cheapest.candidate.num_processors == 16
        # A budget below every design empties the feasible set.
        capped = explore(space, small_requirements(max_cost=1.0))
        assert capped.feasible == ()
        assert capped.cheapest_feasible is None
        assert capped.largest_feasible() is None

    def test_impossible_slo_yields_no_feasible(self):
        space = DesignSpace(families=(bft_space((64,)),), message_lengths=(32,))
        result = explore(space, small_requirements(latency_slo=1.0))
        assert result.feasible == ()
        assert result.cheapest_feasible is None

    def test_empty_expansion_raises(self):
        space = DesignSpace(
            families=(kary_ncube_space((4,), (2,)),),
            message_lengths=(16,),
            patterns=("hotspot",),
        )
        with pytest.raises(ConfigurationError):
            explore(space, small_requirements())

    def test_pareto_frontier_nontrivial_two_families_two_specs(self):
        """Acceptance: a non-trivial frontier over >= 2 families x >= 2 specs."""
        space = DesignSpace(
            families=(bft_space((16, 64)), hypercube_space((4, 6))),
            message_lengths=(16,),
            patterns=(UniformSpec(), HotspotSpec(fraction=0.1)),
        )
        result = explore(space, small_requirements())
        frontier = result.pareto()
        assert len(frontier) >= 2
        families = {e.candidate.family for e in result.evaluations}
        patterns = {e.candidate.pattern for e in result.evaluations}
        assert len(families) >= 2 and len(patterns) >= 2
        # Frontier members are mutually non-dominated.
        def vec(e):
            return (e.latency, e.cost.total, -e.headroom)

        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                va, vb = vec(a), vec(b)
                assert not (
                    all(x <= y for x, y in zip(va, vb))
                    and any(x < y for x, y in zip(va, vb))
                )
        # And every non-frontier finite design is dominated by some member.
        ids = {id(e) for e in frontier}
        for e in result.evaluations:
            if id(e) in ids or not math.isfinite(e.latency):
                continue
            assert any(
                all(x <= y for x, y in zip(vec(f), vec(e)))
                and any(x < y for x, y in zip(vec(f), vec(e)))
                for f in frontier
            )

    def test_json_round_trip(self):
        space = DesignSpace(
            families=(bft_space((16,)),),
            message_lengths=(16,),
            patterns=("uniform", "transpose"),
        )
        result = explore(space, small_requirements())
        blob = json.dumps(result.to_json())
        data = json.loads(blob)
        assert data["feasible_count"] == len(result.feasible)
        assert data["cheapest_feasible"]["family"] == "bft"
        assert all(ev["latency"] is not None for ev in data["evaluations"])

    def test_render_mentions_verdicts(self):
        space = DesignSpace(families=(bft_space((16,)),), message_lengths=(16,))
        text = explore(space, small_requirements()).render()
        assert "cheapest feasible" in text
        assert "largest feasible" in text
        assert "Pareto frontier" in text


class TestScalePerformance:
    def test_hundred_candidate_space_under_30s(self):
        """Acceptance: >= 100 candidates through the parallel + batch path in < 30 s."""
        space = DesignSpace(
            families=(
                bft_space((16, 64)),
                hypercube_space((4, 5)),
                generalized_fattree_space((4,), (2, 3), (2, 3)),
                kary_ncube_space((4,), (2, 3)),
            ),
            message_lengths=(8, 16, 32),
            patterns=("uniform", "hotspot", "transpose"),
            buffer_depths=(1, 2),
        )
        expansion = space.expand()
        assert len(expansion.candidates) >= 100
        start = time.perf_counter()
        result = explore(space, small_requirements(), processes=2)
        elapsed = time.perf_counter() - start
        assert len(result.evaluations) == len(expansion.candidates)
        assert result.cheapest_feasible is not None
        assert len(result.pareto()) >= 2
        assert elapsed < 30.0, f"exploration took {elapsed:.1f}s for {len(result.evaluations)} candidates"


class TestDesignExperiment:
    def test_runs_and_sizes_per_pattern(self):
        from repro.experiments import run_design_exploration

        result = run_design_exploration()
        text = result.render()
        assert "CM-5-class sizing" in text
        rows = result.sizing_rows()
        assert {r[0] for r in rows} == {"uniform", "hotspot", "transpose"}
        # Quick mode reaches at least a 64-PE machine under the budget.
        assert all(r[1] >= 64 for r in rows)
