"""Integration tests: the paper's central claim, model vs. simulation.

These tests enforce the quantitative version of "experimental results agree
very closely over a wide range of load rate" (Section 3.6): below ~0.8 of
the model's saturation load, analytical latencies must track simulated
latencies within a few percent across network sizes and message lengths.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    ButterflyFatTree,
    ButterflyFatTreeModel,
    SimConfig,
    Workload,
    simulate,
)
from repro.core import saturation_flit_load


@pytest.mark.parametrize("n_procs", [16, 64, 256])
@pytest.mark.parametrize("flits", [16, 32])
def test_model_tracks_simulation_midload(n_procs, flits):
    model = ButterflyFatTreeModel(n_procs)
    topo = ButterflyFatTree(n_procs)
    sat = saturation_flit_load(model, flits)
    # The independence assumptions are weakest on the smallest network,
    # where a single long worm spans much of the machine; accuracy there is
    # ~7% rather than the 2-3% seen at N >= 64.
    tol = 0.08 if n_procs == 16 else 0.05
    for frac in (0.25, 0.55):
        wl = Workload.from_flit_load(frac * sat, flits)
        res = simulate(
            topo,
            wl,
            SimConfig(warmup_cycles=1500, measure_cycles=8000, seed=int(100 * frac)),
        )
        assert res.stable
        assert model.latency(wl) == pytest.approx(res.latency_mean, rel=tol)


@pytest.mark.parametrize("flits", [16, 64])
def test_model_tracks_simulation_high_load(flits):
    """At 0.8 saturation the model may drift but must stay within ~12%."""
    model = ButterflyFatTreeModel(64)
    topo = ButterflyFatTree(64)
    sat = saturation_flit_load(model, flits)
    wl = Workload.from_flit_load(0.8 * sat, flits)
    res = simulate(
        topo, wl, SimConfig(warmup_cycles=3000, measure_cycles=15000, seed=9)
    )
    assert res.stable
    assert model.latency(wl) == pytest.approx(res.latency_mean, rel=0.12)


def test_n1024_spot_check():
    """One spot check at the paper's headline size (kept small for CI)."""
    model = ButterflyFatTreeModel(1024)
    topo = ButterflyFatTree(1024)
    wl = Workload.from_flit_load(0.02, 16)
    res = simulate(
        topo, wl, SimConfig(warmup_cycles=2000, measure_cycles=6000, seed=11)
    )
    assert res.stable
    assert model.latency(wl) == pytest.approx(res.latency_mean, rel=0.05)


def test_simulated_saturation_not_below_model_bracket():
    """The simulator must sustain at least ~0.9x the model's saturation
    load (the model is designed to be an accurate-to-conservative predictor
    of the operating region)."""
    model = ButterflyFatTreeModel(64)
    topo = ButterflyFatTree(64)
    sat = saturation_flit_load(model, 16)
    wl = Workload.from_flit_load(0.9 * sat, 16)
    res = simulate(
        topo,
        wl,
        SimConfig(warmup_cycles=2000, measure_cycles=8000, seed=13, drain_factor=3.0),
    )
    assert res.stable


def test_latency_distribution_sane():
    """Simulated latency extremes bracket the model's mean prediction."""
    model = ButterflyFatTreeModel(64)
    topo = ButterflyFatTree(64)
    wl = Workload.from_flit_load(0.06, 16)
    res = simulate(
        topo, wl, SimConfig(warmup_cycles=1000, measure_cycles=6000, seed=17)
    )
    predicted = model.latency(wl)
    assert res.latency_min <= predicted <= res.latency_max
    # The floor of the distribution is the minimal contention-free latency.
    assert res.latency_min >= 16 + 2 - 1


def test_variant_accuracy_ordering():
    """The paper's full model must beat both single-ablation variants in
    accuracy against one shared simulation run (the headline ablation)."""
    from repro import ModelVariant

    topo = ButterflyFatTree(256)
    flits = 32
    model = ButterflyFatTreeModel(256)
    sat = saturation_flit_load(model, flits)
    wl = Workload.from_flit_load(0.6 * sat, flits)
    res = simulate(
        topo, wl, SimConfig(warmup_cycles=2000, measure_cycles=9000, seed=19)
    )
    ref = res.latency_mean
    err_paper = abs(model.latency(wl) - ref)
    err_nomulti = abs(
        ButterflyFatTreeModel(256, ModelVariant.no_multiserver()).latency(wl) - ref
    )
    err_noblock = abs(
        ButterflyFatTreeModel(256, ModelVariant.no_blocking_correction()).latency(wl)
        - ref
    )
    assert err_paper < err_nomulti
    assert err_paper < err_noblock
