"""True/false-positive fixture tests for every code-lint rule (REP001-007)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.findings import Finding, render_findings
from repro.analysis.lint import lint_file, lint_paths, lint_source, main

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def rules_of(findings):
    return sorted({f.rule for f in findings})


def lint_snippet(snippet: str, path: str = "pkg/mod.py"):
    """Lint a snippet at a non-repro path (no allowlists apply)."""
    return lint_source(snippet, Path(path))


class TestFinding:
    def test_render_and_json(self):
        f = Finding(
            rule="REP001", severity="error", message="m", path="a.py", line=3, hint="h"
        )
        assert f.render() == "a.py:3: error: REP001: m [h]"
        assert f.to_json() == {
            "rule": "REP001",
            "severity": "error",
            "message": "m",
            "path": "a.py",
            "line": 3,
            "hint": "h",
        }

    def test_channel_location(self):
        f = Finding(rule="REP101", severity="error", message="m", channel="up:1:3")
        assert f.location == "up:1:3"

    def test_invalid_severity_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Finding(rule="R", severity="fatal", message="m")

    def test_render_findings_sorted(self):
        out = render_findings(
            [
                Finding(rule="R2", severity="error", message="b", path="b.py", line=2),
                Finding(rule="R1", severity="error", message="a", path="a.py", line=9),
            ]
        )
        assert out.splitlines()[0].startswith("a.py:9")


class TestREP001Rng:
    def test_unseeded_default_rng_flagged(self):
        fs = lint_snippet("import numpy as np\nrng = np.random.default_rng()\n")
        assert rules_of(fs) == ["REP001"]

    def test_seeded_default_rng_ok(self):
        fs = lint_snippet("import numpy as np\nrng = np.random.default_rng(42)\n")
        assert fs == []

    def test_global_seed_flagged(self):
        fs = lint_snippet("import numpy as np\nnp.random.seed(0)\n")
        assert rules_of(fs) == ["REP001"]

    def test_legacy_sampler_flagged(self):
        fs = lint_snippet("import numpy as np\nx = np.random.rand(3)\n")
        assert rules_of(fs) == ["REP001"]

    def test_stdlib_random_import_flagged(self):
        assert rules_of(lint_snippet("import random\n")) == ["REP001"]
        assert rules_of(lint_snippet("from random import choice\n")) == ["REP001"]

    def test_rng_module_allowlisted(self):
        fs = lint_source(
            "import numpy as np\nrng = np.random.default_rng()\n",
            Path("src/repro/util/rng.py"),
        )
        assert fs == []

    def test_pragma_suppresses(self):
        fs = lint_snippet(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # lint: allow-rng\n"
        )
        assert fs == []


class TestREP002Specs:
    def test_unfrozen_spec_flagged(self):
        fs = lint_snippet(
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class FooSpec:\n"
            "    x: int = 0\n"
        )
        assert rules_of(fs) == ["REP002"]

    def test_frozen_jsonable_spec_ok(self):
        fs = lint_snippet(
            "from dataclasses import dataclass, field\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    x: int = 0\n"
            "    names: tuple[str, ...] = ()\n"
            "    table: dict[str, float] = field(default_factory=dict)\n"
        )
        assert fs == []

    def test_mutable_default_flagged(self):
        fs = lint_snippet(
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    xs: list = []\n"
        )
        assert "REP002" in rules_of(fs)

    def test_non_jsonable_annotation_flagged(self):
        fs = lint_snippet(
            "from dataclasses import dataclass\n"
            "import numpy as np\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    arr: np.ndarray = None\n"
        )
        assert "REP002" in rules_of(fs)

    def test_non_spec_class_ignored(self):
        fs = lint_snippet(
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Accumulator:\n"
            "    xs: list = None\n"
        )
        assert fs == []

    def test_field_pragma_suppresses(self):
        fs = lint_snippet(
            "from dataclasses import dataclass\n"
            "import numpy as np\n"
            "@dataclass(frozen=True)\n"
            "class FooSpec:\n"
            "    arr: np.ndarray = None  # lint: allow-spec-field\n"
        )
        assert fs == []


class TestREP003Raises:
    def test_stdlib_raise_flagged(self):
        fs = lint_snippet("def f():\n    raise ValueError('nope')\n")
        assert rules_of(fs) == ["REP003"]

    def test_repro_error_ok(self):
        fs = lint_snippet("def f():\n    raise ConfigurationError('x')\n")
        assert fs == []

    def test_bare_reraise_ok(self):
        fs = lint_snippet(
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        raise\n"
        )
        assert fs == []

    def test_variable_reraise_ok(self):
        fs = lint_snippet("def f(last_error):\n    raise last_error\n")
        assert fs == []

    def test_not_implemented_ok(self):
        fs = lint_snippet("def f():\n    raise NotImplementedError\n")
        assert fs == []

    def test_util_stdlib_allowlisted(self):
        fs = lint_source(
            "def f():\n    raise ValueError('x')\n",
            Path("src/repro/util/helpers.py"),
        )
        assert fs == []

    def test_pragma_suppresses(self):
        fs = lint_snippet(
            "def f():\n    raise AttributeError('x')  # lint: allow-raise\n"
        )
        assert fs == []


class TestREP004FloatEq:
    def test_nonsentinel_literal_flagged(self):
        fs = lint_snippet("ok = x == 0.5\n")
        assert rules_of(fs) == ["REP004"]

    def test_sentinel_literals_ok(self):
        assert lint_snippet("ok = x == 0.0\n") == []
        assert lint_snippet("ok = x != 1.0\n") == []

    def test_int_literal_ok(self):
        assert lint_snippet("ok = x == 3\n") == []

    def test_variable_comparison_ok(self):
        assert lint_snippet("ok = a == b\n") == []

    def test_negative_literal_flagged(self):
        fs = lint_snippet("ok = x == -2.5\n")
        assert rules_of(fs) == ["REP004"]

    def test_pragma_suppresses(self):
        assert lint_snippet("ok = x == 0.5  # lint: allow-float-eq\n") == []


class TestREP005Shims:
    def test_toplevel_shim_import_flagged(self):
        fs = lint_source(
            "from repro import latency_sweep\n",
            Path("src/repro/design/foo.py"),
        )
        assert rules_of(fs) == ["REP005"]

    def test_relative_root_shim_import_flagged(self):
        fs = lint_source(
            "from .. import explore\n",
            Path("src/repro/design/foo.py"),
        )
        assert rules_of(fs) == ["REP005"]

    def test_shim_attribute_flagged(self):
        fs = lint_snippet("import repro\nrepro.latency_sweep(16)\n")
        assert rules_of(fs) == ["REP005"]

    def test_replacement_import_ok(self):
        fs = lint_source(
            "from ..runs import run\n",
            Path("src/repro/design/foo.py"),
        )
        assert fs == []

    def test_pragma_suppresses(self):
        fs = lint_source(
            "from repro import latency_sweep  # lint: allow-shim-import\n",
            Path("src/repro/design/foo.py"),
        )
        assert fs == []


class TestREP006WallClock:
    def test_time_time_flagged(self):
        fs = lint_snippet("import time\nt = time.time()\n")
        assert rules_of(fs) == ["REP006"]

    def test_datetime_now_flagged(self):
        fs = lint_snippet(
            "from datetime import datetime\nt = datetime.now()\n"
        )
        assert rules_of(fs) == ["REP006"]

    def test_perf_counter_ok(self):
        assert lint_snippet("import time\nt = time.perf_counter()\n") == []

    def test_provenance_module_allowlisted(self):
        fs = lint_source(
            "import time\nt = time.time()\n",
            Path("src/repro/runs/result.py"),
        )
        assert fs == []

    def test_pragma_suppresses(self):
        fs = lint_snippet("import time\nt = time.time()  # lint: allow-wall-clock\n")
        assert fs == []

    def test_obs_clock_module_allowlisted(self):
        # obs.clock is the sanctioned wall-clock home of the observability
        # layer (trace-file correlation stamps).
        fs = lint_source(
            "import time\nt = time.time()\n",
            Path("src/repro/obs/clock.py"),
        )
        assert fs == []

    def test_other_obs_modules_still_flagged(self):
        # The allowlist is the one module, not the whole obs package —
        # metrics and tracing must stay on monotonic perf_counter.
        fs = lint_source(
            "import time\nt = time.time()\n",
            Path("src/repro/obs/metrics.py"),
        )
        assert rules_of(fs) == ["REP006"]


class TestREP007RegistryOpen:
    def test_open_on_registry_file_name_flagged(self):
        fs = lint_snippet('fh = open("runs.jsonl")\n')
        assert rules_of(fs) == ["REP007"]

    def test_registry_path_attribute_flagged(self):
        fs = lint_snippet('line = registry.records_path.open("a")\n')
        assert rules_of(fs) == ["REP007"]

    def test_computed_receiver_flagged(self):
        # The receiver being an expression (not a bare name chain) must not
        # hide the access.
        fs = lint_snippet(
            "from pathlib import Path\n"
            'blob = Path("runs.index.sqlite").read_bytes()\n'
        )
        assert rules_of(fs) == ["REP007"]

    def test_joined_quarantine_path_flagged(self):
        fs = lint_snippet(
            "from pathlib import Path\n"
            'root = Path("r")\n'
            '(root / "runs.quarantine.jsonl").write_text("")\n'
        )
        assert rules_of(fs) == ["REP007"]

    def test_unrelated_open_ok(self):
        assert lint_snippet('fh = open("notes.txt")\n') == []

    def test_unrelated_write_text_ok(self):
        assert lint_snippet("report_path.write_text(data)\n") == []

    def test_registry_and_index_modules_allowlisted(self):
        snippet = 'fh = open("runs.jsonl")\n'
        for module in ("registry", "index"):
            fs = lint_source(snippet, Path(f"src/repro/runs/{module}.py"))
            assert fs == []

    def test_pragma_suppresses(self):
        fs = lint_snippet(
            'fh = open("runs.jsonl")  # lint: allow-registry-open\n'
        )
        assert fs == []


class TestDrivers:
    def test_syntax_error_reported_not_raised(self):
        fs = lint_snippet("def broken(:\n")
        assert rules_of(fs) == ["REP000"]

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.py").write_text("t = time.time()\n")
        fs = lint_paths([tmp_path])
        assert rules_of(fs) == ["REP001", "REP006"]

    def test_lint_file(self, tmp_path):
        p = tmp_path / "c.py"
        p.write_text("x = y == 0.25\n")
        assert rules_of(lint_file(p)) == ["REP004"]

    def test_main_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert "REP001" in capsys.readouterr().out
        assert main([str(tmp_path / "missing.py")]) == 2

    def test_repo_source_tree_is_finding_free(self):
        findings = lint_paths([SRC])
        assert findings == [], render_findings(findings)


class TestRuleSelectionDriver:
    def test_parse_rules_exact_and_family(self):
        from repro.analysis.lint import parse_rules

        assert parse_rules("REP001,REP004") == {"REP001", "REP004"}
        assert parse_rules("REP2xx") == {"REP201", "REP202", "REP203", "REP204"}
        assert parse_rules("rep2*") == {"REP201", "REP202", "REP203", "REP204"}
        assert parse_rules("REP001, REP2XX") == {
            "REP001", "REP201", "REP202", "REP203", "REP204",
        }

    def test_parse_rules_rejects_unknown(self):
        from repro.errors import ConfigurationError
        from repro.analysis.lint import parse_rules

        with pytest.raises(ConfigurationError):
            parse_rules("REP999")
        with pytest.raises(ConfigurationError):
            parse_rules("")

    def test_run_lint_selection_skips_passes(self, tmp_path):
        from repro.analysis.lint import run_lint

        (tmp_path / "bad.py").write_text("import random\n")
        assert rules_of(run_lint([tmp_path])) == ["REP001"]
        assert run_lint([tmp_path], rules=frozenset({"REP202"})) == []

    def test_main_json_and_list_rules(self, tmp_path, capsys):
        import json

        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["--json", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == 1
        assert report["findings"][0]["rule"] == "REP001"
        assert "REP201" in report["rules"]

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP204" in out and "allow-bare-coroutine" in out

    def test_main_unknown_rules_exit_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["--rules", "NOPE", str(tmp_path)]) == 2
        assert "unknown rule" in capsys.readouterr().err
