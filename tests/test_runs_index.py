"""Tests for the SQLite run index: a disposable cache over the JSONL truth."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.errors import RegistryError
from repro.obs.metrics import METRICS
from repro.runs import RunIndex, RunRegistry, RunResult, Scenario, scenario_key


def tiny_scenario(**overrides) -> Scenario:
    defaults = dict(
        num_processors=16,
        message_flits=16,
        flit_load=0.04,
        sweep_points=4,
        seed=11,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def synth_record(i: int, *, topology: str = "bft", label: str = "") -> RunResult:
    """A registry record without a solve: construction never evaluates."""
    scenario = tiny_scenario(
        topology=topology,
        num_processors={"bft": 16, "hypercube": 16, "kary-ncube": 27}.get(
            topology, 16
        ),
        radix=3 if topology == "kary-ncube" else None,
        label=label,
    )
    return RunResult(
        metrics={"point": {"latency": float(i)}},
        scenario=scenario,
        kind="scenario",
        provenance={"scenario_key": scenario_key(scenario)},
        label=label,
        created_at=float(i + 1),
    )


@pytest.fixture
def registry(tmp_path):
    return RunRegistry(tmp_path / "registry")


class TestRefresh:
    def test_empty_registry_indexes_zero(self, registry):
        with RunIndex(registry) as index:
            assert index.count() == 0
            assert index.latest() is None

    def test_refresh_is_incremental(self, registry):
        registry.save(synth_record(0))
        with RunIndex(registry) as index:
            assert index.refresh() == 1
            assert index.refresh() == 0  # nothing appended
            registry.save(synth_record(1))
            registry.save(synth_record(2))
            assert index.refresh() == 2  # only the tail

    def test_corrupt_lines_not_indexed(self, registry):
        registry.save(synth_record(0))
        with registry.records_path.open("a", encoding="utf-8") as fh:
            fh.write('{"torn append\n')
        registry.save(synth_record(1))
        with RunIndex(registry) as index:
            assert index.count() == 2
            assert index.skipped == 1

    def test_trailing_partial_line_deferred(self, registry):
        registry.save(synth_record(0))
        with registry.records_path.open("a", encoding="utf-8") as fh:
            fh.write(synth_record(1).to_json_str())  # no newline: in flight
        with RunIndex(registry) as index:
            assert index.count() == 1
            with registry.records_path.open("a", encoding="utf-8") as fh:
                fh.write("\n")
            assert index.refresh() == 1
            assert index.count() == 2


class TestRebuild:
    def test_index_file_is_disposable(self, registry):
        for i in range(3):
            registry.save(synth_record(i))
        index = RunIndex(registry)
        assert index.count() == 3
        index.close()
        index.path.unlink()
        with RunIndex(registry) as fresh:
            assert fresh.count() == 3

    def test_corrupt_sqlite_file_triggers_rebuild(self, registry):
        registry.save(synth_record(0))
        index = RunIndex(registry)
        index.refresh()
        index.close()
        index.path.write_bytes(b"this is not a database")
        with RunIndex(registry) as fresh:
            assert fresh.count() == 1

    def test_foreign_index_schema_triggers_rebuild(self, registry):
        registry.save(synth_record(0))
        index = RunIndex(registry)
        index.refresh()
        index.close()
        conn = sqlite3.connect(index.path)
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'index_schema'")
        conn.commit()
        conn.close()
        with RunIndex(registry) as fresh:
            assert fresh.count() == 1

    def test_shrunk_records_file_triggers_rebuild(self, registry):
        for i in range(3):
            registry.save(synth_record(i))
        with registry.records_path.open("a", encoding="utf-8") as fh:
            fh.write("garbage line\n")
        with RunIndex(registry) as index:
            assert index.count() == 3
            registry.doctor(quarantine=True)  # rewrites the file smaller
            assert index.count() == 3
            assert index.query(topology="bft")  # byte offsets still valid

    def test_stale_offsets_reported_as_registry_error(self, registry):
        registry.save(synth_record(0))
        with RunIndex(registry) as index:
            index.refresh()
            # Rewrite the records file to the same total size but different
            # line boundaries: the size check cannot catch this, the
            # byte-range parse must fail loudly instead of misreading.
            original = registry.records_path.read_text(encoding="utf-8")
            run_id = json.loads(original)["run_id"]
            registry.records_path.write_text(
                "x" * (len(original) - 1) + "\n", encoding="utf-8"
            )
            with pytest.raises(RegistryError, match="reindex"):
                index.load(run_id)


class TestQueryEquivalence:
    def test_indexed_query_equals_full_scan(self, registry):
        topologies = ["bft", "hypercube", "kary-ncube"]
        for i in range(60):
            registry.save(
                synth_record(
                    i,
                    topology=topologies[i % 3],
                    label=f"batch-{i % 5}",
                )
            )
        with RunIndex(registry) as index:
            for topology in topologies:
                assert index.query(topology=topology) == registry.query(
                    topology=topology
                )
            assert index.query(label="batch-2") == registry.query(label="batch-2")
            assert index.latest() == registry.latest()
            some_id = registry.ids()[17]
            assert index.load(some_id) == registry.load(some_id)
            assert index.load("latest") == registry.load("latest")

    def test_unknown_filter_rejected(self, registry):
        with RunIndex(registry) as index:
            with pytest.raises(RegistryError, match="unknown index filter"):
                index.query(color="red")

    def test_find_by_scenario_key(self, registry):
        a = synth_record(0, topology="bft")
        b = synth_record(1, topology="hypercube")
        registry.save(a)
        registry.save(b)
        with RunIndex(registry) as index:
            hit = index.find_by_scenario_key(a.provenance["scenario_key"])
            assert hit == a
            assert index.find_by_scenario_key("sk1-" + "0" * 64) is None

    def test_missing_run_id_raises(self, registry):
        registry.save(synth_record(0))
        with RunIndex(registry) as index:
            with pytest.raises(RegistryError, match="not found"):
                index.load("run-000000000000")

    def test_exploration_records_indexed_by_kind(self, registry):
        registry.save(synth_record(0))
        registry.save(
            RunResult(
                metrics={"exploration": {"feasible_count": 2}},
                scenario=None,
                kind="exploration",
                label="frontier",
                created_at=9.0,
            )
        )
        with RunIndex(registry) as index:
            records = index.query(kind="exploration")
            assert len(records) == 1
            assert records[0].metrics["exploration"]["feasible_count"] == 2


class TestScale:
    def test_rebuild_equivalence_on_10k_records(self, registry):
        """Index answers == full-scan answers on a 10k-record registry."""
        line_template = synth_record(0, topology="bft").to_json_str()
        lines = []
        for i in range(10_000):
            record = json.loads(line_template)
            record["run_id"] = f"run-{i:012d}"
            record["created_at"] = float(i + 1)
            record["label"] = f"shard-{i % 7}"
            record["metrics"]["point"]["latency"] = float(i)
            lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        registry.path.mkdir(parents=True, exist_ok=True)
        with registry.records_path.open("w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        with RunIndex(registry) as index:
            assert index.rebuild() == 10_000
            scan = registry.query(label="shard-3")
            indexed = index.query(label="shard-3")
            assert [r.run_id for r in indexed] == [r.run_id for r in scan]
            assert index.latest() == registry.latest()
            run_id = f"run-{4999:012d}"
            assert index.load(run_id) == registry.load(run_id)


class TestObservability:
    def test_index_counters(self, registry):
        registry.save(synth_record(0))
        with METRICS.collect() as telemetry:
            with RunIndex(registry) as index:
                index.refresh()
                index.query(topology="bft")
        counters = telemetry.data["counters"]
        assert counters["index.refreshes"] >= 1
        assert counters["index.records_indexed"] == 1
        assert counters["index.queries"] == 1
