"""Tests for the traffic-scenario specifications (repro.traffic.spec)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, Workload
from repro.simulation.traffic import PoissonTraffic
from repro.traffic import (
    BitComplementSpec,
    BitReversalSpec,
    BurstyArrivals,
    HotspotSpec,
    PermutationSpec,
    QuadLocalSpec,
    TornadoSpec,
    TrafficSpec,
    TransposeSpec,
    UniformSpec,
    available_patterns,
    make_spec,
)

ALL_NAMES = [
    "uniform",
    "permutation",
    "hotspot",
    "quad-local",
    "transpose",
    "bit-reversal",
    "bit-complement",
    "tornado",
]


class TestRegistry:
    def test_all_builtins_registered(self):
        assert available_patterns() == sorted(ALL_NAMES)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_make_spec_roundtrip(self, name):
        spec = make_spec(name)
        assert spec.name == name
        spec.validate(64)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec("zipfian")

    def test_make_spec_forwards_hotspot_params(self):
        spec = make_spec("hotspot", hotspot_fraction=0.3, hotspot_target=5)
        assert spec.fraction == 0.3 and spec.target == 5

    def test_make_spec_forwards_permutation(self):
        spec = make_spec("permutation", permutation=[1, 0, 3, 2])
        assert spec.destination_of(0, 4) == 1
        assert spec.destination_of(3, 4) == 2


class TestMatrices:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_rows_are_distributions(self, name):
        n = 64
        spec = make_spec(name)
        m = spec.destination_matrix(n)
        assert m.shape == (n, n)
        assert np.all(m >= 0)
        assert np.all(np.diagonal(m) == 0.0)
        sums = m.sum(axis=1)
        # Each row sums to 1 (active) or 0 (silent fixed point).
        assert np.all((np.abs(sums - 1.0) < 1e-12) | (sums == 0.0))
        assert np.allclose(sums, spec.source_activity(n))

    def test_hotspot_probability_is_exact(self):
        spec = HotspotSpec(fraction=0.05, target=3)
        m = spec.destination_matrix(64)
        col = np.delete(m[:, 3], 3)
        assert np.allclose(col, 0.05)
        # the remainder is uniform over the other 62 destinations
        row = m[0]
        others = np.delete(row, [0, 3])
        assert np.allclose(others, 0.95 / 62)

    def test_transpose_destinations(self):
        spec = TransposeSpec()
        # 16 PEs = 4 bits; transpose swaps the two 2-bit halves.
        assert spec.destination_of(0b0110, 16) == 0b1001
        assert spec.destination_of(0b0101, 16) == 0b0101  # fixed point
        silent = np.nonzero(spec.source_activity(16) == 0.0)[0]
        assert list(silent) == [0b0000, 0b0101, 0b1010, 0b1111]

    def test_bit_reversal_destinations(self):
        spec = BitReversalSpec()
        assert spec.destination_of(0b0001, 16) == 0b1000
        assert spec.destination_of(0b1001, 16) == 0b1001  # palindrome

    def test_bit_complement_has_no_fixed_points(self):
        spec = BitComplementSpec()
        assert np.all(spec.source_activity(64) == 1.0)
        assert spec.destination_of(0, 64) == 63

    def test_tornado_offset(self):
        spec = TornadoSpec()
        assert spec.destination_of(0, 64) == 32
        assert spec.destination_of(63, 64) == 31

    def test_quad_local_stays_in_quad(self):
        m = QuadLocalSpec().destination_matrix(16)
        for s in range(16):
            quad = s - s % 4
            outside = np.delete(m[s], range(quad, quad + 4))
            assert np.all(outside == 0.0)

    def test_permutation_is_derangement(self):
        spec = PermutationSpec(seed=3)
        perm = spec.permutation_for(32)
        assert sorted(perm) == list(range(32))
        assert np.all(perm != np.arange(32))

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            TransposeSpec().validate(8)  # odd power of two
        with pytest.raises(ConfigurationError):
            BitReversalSpec().validate(12)  # not a power of two
        with pytest.raises(ConfigurationError):
            QuadLocalSpec().validate(6)
        with pytest.raises(ConfigurationError):
            HotspotSpec(fraction=1.5)
        with pytest.raises(ConfigurationError):
            HotspotSpec(target=9).validate(8)
        with pytest.raises(ConfigurationError):
            PermutationSpec(permutation=(0, 0, 1)).validate(3)


class TestSampling:
    def test_generic_sampler_matches_matrix(self):
        """A custom spec with only a matrix must sample that distribution."""

        class Lopsided(TrafficSpec):
            name = "lopsided"

            def destination_matrix(self, num_pes):
                m = np.zeros((num_pes, num_pes))
                m[:, 1] = 0.75
                m[:, 2] = 0.25
                m[1] = 0.0
                m[1, 2] = 1.0
                np.fill_diagonal(m, 0.0)
                m[2, 1] = 1.0  # keep row 2 a distribution
                m[2, 2] = 0.0
                return m

        spec = Lopsided()
        rng = np.random.default_rng(0)
        draws = [spec.sample_destination(0, 8, rng) for _ in range(4000)]
        frac = np.mean(np.asarray(draws) == 1)
        assert frac == pytest.approx(0.75, abs=0.03)

    def test_silent_source_sampling_rejected(self):
        with pytest.raises(ConfigurationError):
            TransposeSpec().sample_destination(0, 16, np.random.default_rng(0))

    def test_hotspot_empirical_fraction(self):
        """The hot node must be hit with probability exactly f, not
        f + (1-f)/(N-1) (the old fallback drew it twice)."""
        spec = HotspotSpec(fraction=0.2, target=3)
        rng = np.random.default_rng(42)
        draws = np.array([spec.sample_destination(0, 16, rng) for _ in range(40_000)])
        frac = np.mean(draws == 3)
        # the buggy construction yields 0.2 + 0.8/15 = 0.253
        assert frac == pytest.approx(0.2, abs=0.012)
        assert 0 not in draws


class TestBurstyArrivals:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyArrivals(duty=0.0)
        with pytest.raises(ConfigurationError):
            BurstyArrivals(duty=1.2)
        with pytest.raises(ConfigurationError):
            BurstyArrivals(burst_cycles=0.0)

    def test_rate_preserved(self):
        wl = Workload(16, 0.02)
        tr = PoissonTraffic(
            16, wl, seed=5, bursty=BurstyArrivals(duty=0.25, burst_cycles=80.0)
        )
        arrivals = list(tr.arrivals(60_000))
        measured = len(arrivals) / (60_000 * 16)
        assert measured == pytest.approx(0.02, rel=0.06)

    def test_interarrivals_are_bursty(self):
        """ON-OFF modulation must push the per-PE inter-arrival CV above 1."""
        wl = Workload(16, 0.02)
        tr = PoissonTraffic(
            4, wl, seed=6, bursty=BurstyArrivals(duty=0.2, burst_cycles=100.0)
        )
        times = [a.time for a in tr.arrivals(200_000) if a.src == 0]
        gaps = np.diff(times)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.3

    def test_deterministic_under_fixed_seed(self):
        wl = Workload(16, 0.03)
        mk = lambda: PoissonTraffic(
            8, wl, seed=11, bursty=BurstyArrivals(duty=0.3, burst_cycles=40.0)
        )
        a = list(mk().arrivals(5000))
        b = list(mk().arrivals(5000))
        assert a == b

    def test_fractional_activity_scales_injection_rate(self):
        """A custom spec with rows summing to 0.5 must halve each source's
        rate in the simulator, matching the analytical flow weighting."""

        class HalfRate(TrafficSpec):
            name = "half-rate"

            def destination_matrix(self, num_pes):
                m = np.full((num_pes, num_pes), 0.5 / (num_pes - 1))
                np.fill_diagonal(m, 0.0)
                return m

        wl = Workload(16, 0.02)
        tr = PoissonTraffic(16, wl, seed=9, spec=HalfRate())
        arrivals = list(tr.arrivals(50_000))
        measured = len(arrivals) / (50_000 * 16)
        assert measured == pytest.approx(0.01, rel=0.06)

    def test_duty_one_is_plain_poisson_rate(self):
        wl = Workload(16, 0.02)
        tr = PoissonTraffic(
            8, wl, seed=8, bursty=BurstyArrivals(duty=1.0, burst_cycles=50.0)
        )
        arrivals = list(tr.arrivals(30_000))
        measured = len(arrivals) / (30_000 * 8)
        assert measured == pytest.approx(0.02, rel=0.08)
