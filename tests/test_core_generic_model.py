"""Tests for the general channel-graph solver (Eqs. 3, 11) and its builders."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    ButterflyFatTreeModel,
    ChannelGraphModel,
    ConfigurationError,
    ModelVariant,
    Stage,
    Transition,
    Workload,
    bft_stage_graph,
    hypercube_stage_graph,
)
from repro.queueing import mg1_waiting_time


def _single_queue_graph(rate: float, flits: int) -> ChannelGraphModel:
    stages = [
        Stage("eject", rate_per_server=rate),
        Stage(
            "inject",
            rate_per_server=rate,
            transitions=(Transition("eject", 1.0),),
        ),
    ]
    return ChannelGraphModel(
        stages, message_flits=flits, entry="inject", average_distance=2.0
    )


class TestStageValidation:
    def test_transition_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            Stage("s", 0.1, transitions=(Transition("t", 0.5),))

    def test_transition_probability_range(self):
        with pytest.raises(ConfigurationError):
            Transition("t", 1.5)
        with pytest.raises(ConfigurationError):
            Transition("t", 0.5, queue_probability=-0.1)

    def test_unknown_target_rejected(self):
        stages = [Stage("a", 0.1, transitions=(Transition("missing", 1.0),))]
        with pytest.raises(ConfigurationError):
            ChannelGraphModel(stages, message_flits=8, entry="a", average_distance=1.0)

    def test_duplicate_names_rejected(self):
        stages = [Stage("a", 0.1), Stage("a", 0.2)]
        with pytest.raises(ConfigurationError):
            ChannelGraphModel(stages, message_flits=8, entry="a", average_distance=1.0)

    def test_unknown_entry_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelGraphModel([Stage("a", 0.1)], message_flits=8, entry="b", average_distance=1.0)

    def test_bad_flits_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelGraphModel([Stage("a", 0.1)], message_flits=0, entry="a", average_distance=1.0)

    def test_bad_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            Stage("a", 0.1, servers=0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            Stage("a", -0.1)


class TestTwoStagePipeline:
    def test_terminal_service_is_message_length(self):
        g = _single_queue_graph(0.01, 16)
        sol = g.solve()
        assert sol["eject"].service == 16.0

    def test_injection_service_includes_downstream_wait(self):
        # With the blocking correction and a single upstream feeder,
        # P = 1 - (lam/lam)*1 = 0: the worm never waits behind itself.
        g = _single_queue_graph(0.01, 16)
        sol = g.solve()
        assert sol["inject"].service == pytest.approx(16.0)

    def test_without_correction_wait_is_charged(self):
        stages = [
            Stage("eject", rate_per_server=0.01),
            Stage("inject", rate_per_server=0.01, transitions=(Transition("eject", 1.0),)),
        ]
        g = ChannelGraphModel(
            stages,
            message_flits=16,
            entry="inject",
            average_distance=2.0,
            variant=ModelVariant.no_blocking_correction(),
        )
        sol = g.solve()
        w = mg1_waiting_time(0.01, 16.0, 0.0)
        assert sol["inject"].service == pytest.approx(16.0 + w)

    def test_latency_zero_rate(self):
        g = _single_queue_graph(0.0, 16)
        assert g.latency() == pytest.approx(16 + 2 - 1)

    def test_acyclic_detection(self):
        assert _single_queue_graph(0.01, 16).is_acyclic


class TestCyclicGraphs:
    def _ring_graph(self, rate: float, continue_prob: float) -> ChannelGraphModel:
        """A self-looping channel class (abstraction of a ring)."""
        stages = [
            Stage("eject", rate_per_server=rate),
            Stage(
                "ring",
                rate_per_server=rate * 2,
                transitions=(
                    Transition("ring", continue_prob),
                    Transition("eject", 1.0 - continue_prob),
                ),
            ),
            Stage("inject", rate_per_server=rate, transitions=(Transition("ring", 1.0),)),
        ]
        return ChannelGraphModel(
            stages, message_flits=8, entry="inject", average_distance=3.0
        )

    def test_cycle_detected(self):
        g = self._ring_graph(0.001, 0.5)
        assert not g.is_acyclic

    def test_fixed_point_solves_cycle(self):
        g = self._ring_graph(0.001, 0.5)
        sol = g.solve()
        assert math.isfinite(sol["ring"].service)
        assert sol["ring"].service > 8.0

    def test_cycle_latency_monotone_in_rate(self):
        l1 = self._ring_graph(0.0005, 0.5).latency()
        l2 = self._ring_graph(0.002, 0.5).latency()
        assert l2 > l1

    def test_saturated_cycle_goes_inf(self):
        g = self._ring_graph(0.2, 0.9)
        assert math.isinf(g.latency())


class TestBftEquivalence:
    """The generic solver must reproduce the closed-form sweep exactly."""

    @pytest.mark.parametrize("n_procs", [4, 16, 64, 256, 1024])
    @pytest.mark.parametrize("load", [0.005, 0.02, 0.035])
    def test_latency_matches_closed_form(self, n_procs, load):
        wl = Workload.from_flit_load(load, 32)
        closed = ButterflyFatTreeModel(n_procs).latency(wl)
        generic = bft_stage_graph(n_procs, wl).latency()
        if math.isinf(closed):
            assert math.isinf(generic)
        else:
            assert generic == pytest.approx(closed, rel=1e-12)

    @pytest.mark.parametrize(
        "variant",
        [
            ModelVariant.paper(),
            ModelVariant.no_multiserver(),
            ModelVariant.no_blocking_correction(),
            ModelVariant.naive(),
            ModelVariant.deterministic_scv(),
            ModelVariant.exponential_scv(),
            ModelVariant.conditional_up(),
        ],
        ids=lambda v: v.label,
    )
    def test_all_variants_match(self, variant):
        wl = Workload.from_flit_load(0.02, 16)
        closed = ButterflyFatTreeModel(256, variant).latency(wl)
        generic = bft_stage_graph(256, wl, variant).latency()
        assert generic == pytest.approx(closed, rel=1e-12)

    def test_per_stage_values_match(self):
        wl = Workload.from_flit_load(0.02, 32)
        model = ButterflyFatTreeModel(64)
        sol = model.solve(wl)
        graph = bft_stage_graph(64, wl)
        stages = graph.solve()
        for l in range(model.levels):
            assert stages[f"down{l}"].service == pytest.approx(float(sol.down_service[l]))
            assert stages[f"down{l}"].wait == pytest.approx(float(sol.down_wait[l]))
            assert stages[f"up{l}"].service == pytest.approx(float(sol.up_service[l]))
            assert stages[f"up{l}"].wait == pytest.approx(float(sol.up_wait[l]))

    def test_bft_graph_is_acyclic(self):
        wl = Workload.from_flit_load(0.02, 32)
        assert bft_stage_graph(64, wl).is_acyclic


class TestHypercubeGraph:
    def test_acyclic(self):
        wl = Workload.from_flit_load(0.05, 16)
        assert hypercube_stage_graph(5, wl).is_acyclic

    def test_zero_load_latency(self):
        from repro.topology.properties import hypercube_average_distance

        wl = Workload(16, 0.0)
        g = hypercube_stage_graph(4, wl)
        assert g.latency() == pytest.approx(16 + hypercube_average_distance(4) - 1)

    def test_transition_probabilities_are_normalized(self):
        wl = Workload(16, 0.001)
        g = hypercube_stage_graph(6, wl)
        for stage in g.stages.values():
            if stage.transitions:
                assert sum(t.probability for t in stage.transitions) == pytest.approx(1.0)

    def test_dimension_rates_uniform(self):
        wl = Workload(16, 0.004)
        g = hypercube_stage_graph(5, wl)
        rates = {g.stages[f"dim{k}"].rate_per_server for k in range(5)}
        assert max(rates) - min(rates) < 1e-15
        # lambda_dim = lambda0 * 2^(d-1) / (2^d - 1)
        assert rates.pop() == pytest.approx(0.004 * 16 / 31)

    def test_monotone_in_load(self):
        lats = [
            hypercube_stage_graph(5, Workload.from_flit_load(x, 16)).latency()
            for x in (0.02, 0.1, 0.2)
        ]
        assert lats == sorted(lats)

    def test_saturates(self):
        assert math.isinf(
            hypercube_stage_graph(5, Workload.from_flit_load(2.0, 16)).latency()
        )

    def test_rejects_bad_dimension(self):
        with pytest.raises(ConfigurationError):
            hypercube_stage_graph(0, Workload(16, 0.01))
