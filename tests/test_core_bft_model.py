"""Tests for the closed-form butterfly fat-tree model (Eqs. 16-26)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ButterflyFatTreeModel,
    ConfigurationError,
    ModelVariant,
    Workload,
    bft_average_distance,
)
from repro.core import saturation_injection_rate
from repro.core.rates import bft_channel_rates, up_probability
from repro.queueing import mg1_waiting_time_wormhole, mgm_waiting_time_wormhole


class TestZeroLoad:
    @pytest.mark.parametrize("n_procs", [4, 16, 64, 256, 1024])
    @pytest.mark.parametrize("flits", [16, 32, 64])
    def test_zero_load_closed_form(self, n_procs, flits):
        model = ButterflyFatTreeModel(n_procs)
        wl = Workload(flits, 0.0)
        expected = flits + bft_average_distance(model.levels) - 1
        assert model.latency(wl) == pytest.approx(expected)
        assert model.zero_load_latency(flits) == pytest.approx(expected)

    def test_zero_load_services_are_message_length(self):
        model = ButterflyFatTreeModel(64)
        sol = model.solve(Workload(32, 0.0))
        assert np.allclose(sol.down_service, 32.0)
        assert np.allclose(sol.up_service, 32.0)
        assert np.allclose(sol.down_wait, 0.0)
        assert np.allclose(sol.up_wait, 0.0)

    def test_figure3_zero_load_intercepts(self):
        # N=1024: D_bar = 9558/1023; L0 = F + D_bar - 1.
        model = ButterflyFatTreeModel(1024)
        d_bar = 9558 / 1023
        for flits in (16, 32, 64):
            assert model.zero_load_latency(flits) == pytest.approx(flits + d_bar - 1)


class TestEquationStructure:
    """Verify the sweep reproduces the paper's equations term by term."""

    def test_eq16_17_ejection_channel(self):
        model = ButterflyFatTreeModel(256)
        wl = Workload(16, 0.004)
        sol = model.solve(wl)
        assert sol.down_service[0] == 16.0  # Eq. 16: x_{1,0} = s/f
        expected_wait = mg1_waiting_time_wormhole(sol.rate[0], 16.0, 16)
        assert sol.down_wait[0] == pytest.approx(expected_wait)  # Eq. 17

    def test_eq18_down_recursion(self):
        model = ButterflyFatTreeModel(256)
        wl = Workload(16, 0.004)
        sol = model.solve(wl)
        for l in range(1, model.levels):
            p = 1 - 0.25 * sol.rate[l] / sol.rate[l - 1]
            expected = sol.down_service[l - 1] + p * sol.down_wait[l - 1]
            assert sol.down_service[l] == pytest.approx(expected)

    def test_eq19_down_waits_are_mg1(self):
        model = ButterflyFatTreeModel(256)
        sol = model.solve(Workload(16, 0.004))
        for l in range(model.levels):
            expected = mg1_waiting_time_wormhole(
                sol.rate[l], sol.down_service[l], 16
            )
            assert sol.down_wait[l] == pytest.approx(expected)

    def test_eq20_top_channel_two_thirds(self):
        # x_{n-1,n} = x_{n,n-1} + (2/3) W_{n,n-1}.
        model = ButterflyFatTreeModel(256)
        sol = model.solve(Workload(16, 0.004))
        top = model.levels - 1
        expected = sol.down_service[top] + (2.0 / 3.0) * sol.down_wait[top]
        assert sol.up_service[top] == pytest.approx(expected)

    def test_eq21_23_up_waits_are_two_server_with_doubled_rate(self):
        # The published correction: W uses the pair's total rate 2*lambda.
        model = ButterflyFatTreeModel(256)
        sol = model.solve(Workload(16, 0.004))
        for u in range(1, model.levels):
            expected = mgm_waiting_time_wormhole(
                2.0 * sol.rate[u], sol.up_service[u], 2, 16
            )
            assert sol.up_wait[u] == pytest.approx(expected)

    def test_eq22_up_recursion(self):
        model = ButterflyFatTreeModel(1024)
        sol = model.solve(Workload(16, 0.001))
        n = model.levels
        for u in range(n - 1):
            p_up = up_probability(n, u + 1)
            p_down = 1 - p_up
            up_term = p_up * (
                sol.up_service[u + 1]
                + (1 - sol.rate[u] / sol.rate[u + 1] * p_up) * sol.up_wait[u + 1]
            )
            down_term = p_down * (
                sol.down_service[u] + (1 - p_down / 3.0) * sol.down_wait[u]
            )
            assert sol.up_service[u] == pytest.approx(up_term + down_term)

    def test_eq24_injection_wait_is_single_server(self):
        model = ButterflyFatTreeModel(256)
        sol = model.solve(Workload(16, 0.004))
        expected = mg1_waiting_time_wormhole(sol.rate[0], sol.up_service[0], 16)
        assert sol.up_wait[0] == pytest.approx(expected)

    def test_eq25_latency_assembly(self):
        model = ButterflyFatTreeModel(256)
        sol = model.solve(Workload(16, 0.004))
        expected = (
            sol.injection_wait + sol.injection_service + model.average_distance - 1
        )
        assert sol.latency == pytest.approx(expected)

    def test_breakdown_sums_to_latency(self):
        model = ButterflyFatTreeModel(64)
        sol = model.solve(Workload(32, 0.002))
        b = sol.breakdown()
        assert b["injection_wait"] + b["injection_service"] + b["pipeline"] == (
            pytest.approx(b["latency"])
        )


class TestBehaviour:
    def test_latency_monotone_in_load(self):
        model = ButterflyFatTreeModel(256)
        lats = [
            model.latency_at_flit_load(x, 32)
            for x in np.linspace(0.001, 0.07, 12)
        ]
        finite = [x for x in lats if math.isfinite(x)]
        assert finite == sorted(finite)

    def test_latency_increases_with_message_length(self):
        model = ButterflyFatTreeModel(256)
        wl16 = Workload.from_flit_load(0.02, 16)
        wl64 = Workload.from_flit_load(0.02, 64)
        assert model.latency(wl64) > model.latency(wl16)

    def test_latency_increases_with_network_size(self):
        wl = Workload.from_flit_load(0.02, 32)
        lats = [ButterflyFatTreeModel(n).latency(wl) for n in (16, 64, 256, 1024)]
        assert lats == sorted(lats)

    def test_flit_load_scale_invariance(self):
        """Structural property: at fixed flit load, waits and services scale
        linearly with message length, so (L - D_bar + 1) / F is invariant."""
        for n_procs in (16, 256):
            model = ButterflyFatTreeModel(n_procs)
            for load in (0.01, 0.03):
                vals = []
                for flits in (8, 16, 32, 64):
                    lat = model.latency_at_flit_load(load, flits)
                    vals.append((lat - model.average_distance + 1) / flits)
                assert max(vals) - min(vals) < 1e-9

    def test_saturated_point_is_inf(self):
        model = ButterflyFatTreeModel(1024)
        assert math.isinf(model.latency_at_flit_load(0.2, 32))

    def test_solution_flags_saturation(self):
        model = ButterflyFatTreeModel(1024)
        sol = model.solve(Workload.from_flit_load(0.2, 32))
        assert sol.saturated
        sol_ok = model.solve(Workload.from_flit_load(0.01, 32))
        assert not sol_ok.saturated

    def test_utilizations_below_one_below_saturation(self):
        model = ButterflyFatTreeModel(1024)
        sat = saturation_injection_rate(model, 32)
        sol = model.solve(Workload(32, 0.9 * sat.injection_rate))
        assert np.all(sol.up_utilization() < 1.0)
        assert np.all(sol.down_utilization() < 1.0)

    def test_rejects_non_workload(self):
        model = ButterflyFatTreeModel(16)
        with pytest.raises(ConfigurationError):
            model.solve(0.01)  # type: ignore[arg-type]

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            ButterflyFatTreeModel(100)

    def test_describe_mentions_variant(self):
        m = ButterflyFatTreeModel(64, ModelVariant.naive())
        assert "naive" in m.describe()

    @given(
        exponent=st.integers(1, 5),
        load=st.floats(0.001, 0.035),
        flits=st.sampled_from([16, 32, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_latency_at_least_zero_load(self, exponent, load, flits):
        model = ButterflyFatTreeModel(4**exponent)
        lat = model.latency_at_flit_load(load, flits)
        assert lat >= model.zero_load_latency(flits) - 1e-9

    @given(exponent=st.integers(1, 4), flits=st.sampled_from([16, 32]))
    @settings(max_examples=20, deadline=None)
    def test_property_is_stable_consistent_with_latency(self, exponent, flits):
        model = ButterflyFatTreeModel(4**exponent)
        sat = saturation_injection_rate(model, flits)
        below = Workload(flits, 0.9 * sat.injection_rate)
        above = Workload(flits, 1.2 * sat.injection_rate)
        assert model.is_stable(below)
        assert not model.is_stable(above)


class TestVariants:
    def test_paper_is_default(self):
        assert ButterflyFatTreeModel(16).variant == ModelVariant.paper()

    def test_no_multiserver_predicts_higher_latency(self):
        wl = Workload.from_flit_load(0.03, 32)
        paper = ButterflyFatTreeModel(256).latency(wl)
        nomulti = ButterflyFatTreeModel(256, ModelVariant.no_multiserver()).latency(wl)
        assert nomulti > paper

    def test_no_blocking_predicts_higher_latency(self):
        wl = Workload.from_flit_load(0.05, 32)
        paper = ButterflyFatTreeModel(256).latency(wl)
        noblock = ButterflyFatTreeModel(
            256, ModelVariant.no_blocking_correction()
        ).latency(wl)
        assert noblock > paper

    def test_scv_ordering(self):
        # At equal load: deterministic <= draper-ghosh <= exponential waits.
        wl = Workload.from_flit_load(0.05, 32)
        det = ButterflyFatTreeModel(256, ModelVariant.deterministic_scv()).latency(wl)
        dg = ButterflyFatTreeModel(256).latency(wl)
        exp = ButterflyFatTreeModel(256, ModelVariant.exponential_scv()).latency(wl)
        assert det <= dg <= exp

    def test_conditional_up_close_to_paper(self):
        wl = Workload.from_flit_load(0.02, 32)
        paper = ButterflyFatTreeModel(1024).latency(wl)
        cond = ButterflyFatTreeModel(1024, ModelVariant.conditional_up()).latency(wl)
        assert abs(cond - paper) / paper < 0.05

    def test_all_variants_zero_load_agree(self):
        wl = Workload(32, 0.0)
        for variant in (
            ModelVariant.paper(),
            ModelVariant.no_multiserver(),
            ModelVariant.no_blocking_correction(),
            ModelVariant.naive(),
            ModelVariant.deterministic_scv(),
            ModelVariant.exponential_scv(),
            ModelVariant.conditional_up(),
        ):
            model = ButterflyFatTreeModel(64, variant)
            assert model.latency(wl) == pytest.approx(model.zero_load_latency(32))

    def test_with_label(self):
        v = ModelVariant.paper().with_label("x")
        assert v.label == "x"
        assert v.multiserver_up
