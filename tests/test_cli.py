"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.name == "fig3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])


class TestCommands:
    def test_model(self, capsys):
        assert main(["model", "-n", "64", "-f", "16", "-l", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "injection_wait" in out
        assert "latency" in out

    def test_model_bad_size_is_clean_error(self, capsys):
        # Invalid arguments exit with the argparse convention (status 2)
        # and a one-line message, never a traceback.
        assert main(["model", "-n", "100"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_sweep(self, capsys):
        assert main(["sweep", "-n", "64", "-f", "16", "--points", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 5  # header + separator + 4 rows

    def test_saturation(self, capsys):
        assert main(["saturation", "-n", "64", "-f", "16,32"]) == 0
        out = capsys.readouterr().out
        assert "flit load" in out

    def test_model_with_pattern(self, capsys):
        assert main(
            [
                "model",
                "-n",
                "16",
                "-f",
                "16",
                "-l",
                "0.05",
                "--pattern",
                "hotspot",
                "--hotspot-fraction",
                "0.2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "pattern=hotspot" in out
        assert "latency" in out

    def test_sweep_with_pattern(self, capsys):
        assert main(
            ["sweep", "-n", "16", "-f", "16", "--points", "4", "--pattern", "tornado"]
        ) == 0
        out = capsys.readouterr().out
        assert "tornado" in out
        assert out.count("\n") >= 5

    def test_saturation_with_pattern(self, capsys):
        assert main(
            ["saturation", "-n", "16", "-f", "16", "--pattern", "bit-reversal"]
        ) == 0
        assert "bit-reversal" in capsys.readouterr().out

    def test_simulate_with_pattern(self, capsys):
        rc = main(
            [
                "simulate",
                "-n",
                "16",
                "-f",
                "16",
                "-l",
                "0.04",
                "--pattern",
                "transpose",
                "--warmup",
                "300",
                "--measure",
                "1200",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pattern: transpose" in out
        assert "model prediction" in out

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["model", "--pattern", "zipf"])

    def test_scalar_with_pattern_is_clean_error(self, capsys):
        rc = main(
            ["sweep", "-n", "16", "-f", "16", "--pattern", "tornado", "--scalar"]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["event", "flit", "buffered"])
    def test_simulate_all_engines(self, capsys, engine):
        rc = main(
            [
                "simulate",
                "-n",
                "16",
                "-f",
                "16",
                "-l",
                "0.05",
                "--simulator",
                engine,
                "--warmup",
                "300",
                "--measure",
                "1500",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency" in out and "model prediction" in out

    def test_info(self, capsys):
        assert main(["info", "-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "links" in out and "<0,1>" in out

    def test_experiment_crosscheck(self, capsys):
        assert main(["experiment", "crosscheck"]) == 0
        assert "cross-validation" in capsys.readouterr().out

    def test_patterns_lists_registry(self, capsys):
        from repro.traffic.spec import available_patterns

        assert main(["patterns"]) == 0
        out = capsys.readouterr().out
        for name in available_patterns():
            assert name in out

    def test_design_table(self, capsys):
        rc = main(
            [
                "design",
                "--families",
                "bft",
                "--sizes",
                "16,64",
                "--flits",
                "16",
                "--patterns",
                "uniform",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cheapest feasible" in out
        assert "Pareto frontier" in out

    def test_design_json(self, capsys):
        import json

        rc = main(
            [
                "design",
                "--families",
                "bft,hypercube",
                "--sizes",
                "16",
                "--flits",
                "16",
                "--patterns",
                "uniform",
                "--json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert {e["family"] for e in data["evaluations"]} == {"bft", "hypercube"}
        assert data["cheapest_feasible"] is not None

    def test_design_drops_unrealizable_sizes(self, capsys):
        # 32 is a power of two but not of four: hypercube keeps it, bft drops it.
        rc = main(
            [
                "design",
                "--families",
                "bft,hypercube",
                "--sizes",
                "16,32",
                "--flits",
                "16",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "dimension=5" in out
        assert "processors=32" not in out

    def test_design_large_exponent_sizes_realizable(self, capsys):
        # Exponent inversion must not cap out: 2**16 = 65536 dimensions=16.
        rc = main(
            [
                "design",
                "--families",
                "kary-ncube",
                "--radix",
                "2",
                "--sizes",
                "65536",
                "--flits",
                "16",
            ]
        )
        assert rc == 0
        assert "dimensions=16" in capsys.readouterr().out

    def test_design_no_realizable_size_is_clean_error(self, capsys):
        # An infeasible scenario is a usage error: status 2, one line.
        rc = main(["design", "--families", "bft", "--sizes", "32", "--flits", "16"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_design_bad_sizes_is_clean_error(self, capsys):
        rc = main(["design", "--families", "bft", "--sizes", "big", "--flits", "16"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_experiment_design(self, capsys):
        assert main(["experiment", "design"]) == 0
        assert "CM-5-class sizing" in capsys.readouterr().out


class TestJsonEverywhere:
    """Every data-producing subcommand shares one --json formatter."""

    def _json_out(self, capsys, argv):
        import json

        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_model_json(self, capsys):
        data = self._json_out(
            capsys, ["model", "-n", "16", "-f", "16", "-l", "0.05", "--json"]
        )
        assert data["components"]["latency"] > 0
        assert data["num_processors"] == 16

    def test_sweep_json(self, capsys):
        data = self._json_out(
            capsys, ["sweep", "-n", "16", "-f", "16", "--points", "4", "--json"]
        )
        assert len(data["flit_loads"]) == 4
        assert len(data["latencies"]) == 4

    def test_saturation_json(self, capsys):
        data = self._json_out(
            capsys, ["saturation", "-n", "16", "-f", "16,32", "--json"]
        )
        assert [row["message_flits"] for row in data["saturation"]] == [16, 32]
        assert all(row["flit_load"] > 0 for row in data["saturation"])

    def test_simulate_json(self, capsys):
        data = self._json_out(
            capsys,
            [
                "simulate", "-n", "16", "-f", "16", "-l", "0.04",
                "--warmup", "300", "--measure", "1200", "--json",
            ],
        )
        assert data["latency_mean"] > 0
        assert "model_prediction" in data

    def test_info_json(self, capsys):
        data = self._json_out(capsys, ["info", "-n", "16", "--json"])
        assert data["processors"] == 16

    def test_patterns_json(self, capsys):
        from repro.traffic.spec import available_patterns

        data = self._json_out(capsys, ["patterns", "--json"])
        assert set(data["patterns"]) == set(available_patterns())


class TestRunCommand:
    def test_run_batch(self, capsys):
        rc = main(["run", "-n", "16", "-f", "16", "-l", "0.04", "--points", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend=batch" in out
        assert "saturation.flit_load" in out

    def test_run_json_round_trips(self, capsys):
        import json

        from repro.runs import RunResult

        rc = main(
            ["run", "-n", "16", "-f", "16", "-l", "0.04", "--points", "0", "--json"]
        )
        assert rc == 0
        record = RunResult.from_json(json.loads(capsys.readouterr().out))
        assert record.scenario.num_processors == 16
        assert record.metrics["point"]["latency"] > 0

    def test_run_simulate_and_registry_roundtrip(self, capsys, tmp_path):
        registry_dir = str(tmp_path / "registry")
        rc = main(
            [
                "run", "-n", "16", "-f", "16", "-l", "0.04",
                "--backend", "simulate", "--replications", "1",
                "--warmup", "300", "--measure", "1200",
                "--save", "--registry", registry_dir, "--label", "cli-test",
            ]
        )
        assert rc == 0
        assert "saved to" in capsys.readouterr().out
        rc = main(["run", "-n", "16", "-f", "16", "--points", "0",
                   "--save", "--registry", registry_dir])
        assert rc == 0
        capsys.readouterr()

        assert main(["runs", "list", "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "cli-test" in out

        assert main(["runs", "list", "--registry", registry_dir,
                     "--backend", "simulate"]) == 0
        assert "1 run(s)" in capsys.readouterr().out

    def test_runs_diff_latest(self, capsys, tmp_path):
        registry_dir = str(tmp_path / "registry")
        for _ in range(2):
            assert main(["run", "-n", "16", "-f", "16", "--points", "0",
                         "--save", "--registry", registry_dir]) == 0
        capsys.readouterr()
        assert main(["runs", "diff", "latest", "latest",
                     "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "point.latency" in out
        assert "max |rel|" in out

    def test_runs_diff_missing_run_is_clean_error(self, capsys, tmp_path):
        rc = main(["runs", "diff", "run-a", "run-b",
                   "--registry", str(tmp_path / "empty")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv,topology",
        [
            (["run", "--topology", "bft", "-n", "16"], "bft"),
            (
                ["run", "--topology", "generalized-fattree", "-n", "8",
                 "--children", "2", "--parents", "2"],
                "generalized-fattree",
            ),
            (["run", "--topology", "hypercube", "-n", "16"], "hypercube"),
            (
                ["run", "--topology", "kary-ncube", "-n", "9", "--radix", "3"],
                "kary-ncube",
            ),
        ],
    )
    def test_run_every_topology_family_json(self, capsys, argv, topology):
        import json

        from repro.runs import RunResult

        rc = main(argv + ["-f", "16", "-l", "0.03", "--points", "0", "--json"])
        assert rc == 0
        record = RunResult.from_json(json.loads(capsys.readouterr().out))
        assert record.scenario.topology == topology
        assert record.metrics["family"]["name"] == topology
        assert record.metrics["point"]["latency"] > 0
        assert record.metrics["saturation"]["flit_load"] > 0

    def test_run_unrealizable_topology_size_is_clean_error(self, capsys):
        rc = main(["run", "--topology", "hypercube", "-n", "12",
                   "-f", "16", "--points", "0"])
        assert rc == 2
        assert "power of two" in capsys.readouterr().err

    def test_runs_list_topology_filter(self, capsys, tmp_path):
        registry_dir = str(tmp_path / "registry")
        for argv in (
            ["run", "--topology", "hypercube", "-n", "16"],
            ["run", "--topology", "bft", "-n", "16"],
        ):
            assert main(argv + ["-f", "16", "--points", "0",
                                "--save", "--registry", registry_dir]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--registry", registry_dir,
                     "--topology", "hypercube"]) == 0
        out = capsys.readouterr().out
        assert "1 run(s)" in out and "hypercube" in out

    def test_experiment_topologies(self, capsys):
        assert main(["experiment", "topologies"]) == 0
        out = capsys.readouterr().out
        assert "kary-ncube" in out and "hypercube" in out

    def test_run_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "warp"])

    def test_run_bad_points_is_clean_error(self, capsys):
        rc = main(["run", "-n", "16", "-f", "16", "--points", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestIndexedRegistryCommands:
    def seed_registry(self, registry_dir):
        for argv in (
            ["run", "--topology", "hypercube", "-n", "16"],
            ["run", "--topology", "bft", "-n", "16"],
        ):
            assert main(argv + ["-f", "16", "--points", "0",
                                "--save", "--registry", registry_dir]) == 0

    def test_runs_reindex_reports_count(self, capsys, tmp_path):
        registry_dir = str(tmp_path / "registry")
        self.seed_registry(registry_dir)
        capsys.readouterr()
        assert main(["runs", "reindex", "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "reindexed" in out
        assert "2 record(s)" in out
        assert "runs.index.sqlite" in out

    def test_runs_reindex_json(self, capsys, tmp_path):
        import json

        registry_dir = str(tmp_path / "registry")
        self.seed_registry(registry_dir)
        capsys.readouterr()
        assert main(["runs", "reindex", "--registry", registry_dir,
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["indexed"] == 2
        assert data["skipped"] == 0

    def test_runs_list_indexed_matches_scan(self, capsys, tmp_path):
        registry_dir = str(tmp_path / "registry")
        self.seed_registry(registry_dir)
        capsys.readouterr()
        assert main(["runs", "list", "--registry", registry_dir,
                     "--indexed", "--topology", "hypercube"]) == 0
        indexed_out = capsys.readouterr().out
        assert "1 run(s)" in indexed_out and "hypercube" in indexed_out
        assert main(["runs", "list", "--registry", registry_dir,
                     "--topology", "hypercube"]) == 0
        scanned_out = capsys.readouterr().out
        # The indexed listing renders exactly what the full scan renders.
        assert indexed_out == scanned_out


class TestDesignSave:
    def test_design_save_records_exploration(self, capsys, tmp_path):
        registry_dir = str(tmp_path / "registry")
        rc = main(
            [
                "design",
                "--families", "bft",
                "--sizes", "16",
                "--flits", "16",
                "--patterns", "uniform",
                "--save", "--registry", registry_dir,
                "--label", "cm5-sizing",
            ]
        )
        assert rc == 0
        assert "saved to" in capsys.readouterr().out

        from repro.runs import RunRegistry

        (record,) = RunRegistry(registry_dir).query(kind="exploration")
        assert record.label == "cm5-sizing"
        exploration = record.metrics["exploration"]
        assert exploration["feasible_count"] >= 1
        assert exploration["cheapest_feasible"] is not None
        assert isinstance(exploration["pareto"], list)

        capsys.readouterr()
        assert main(["runs", "list", "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "exploration" in out and "cm5-sizing" in out


class TestServeParser:
    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9000",
             "--solver-threads", "2", "--registry", "/tmp/r"]
        )
        assert args.command == "serve"
        assert args.host == "0.0.0.0"
        assert args.port == 9000
        assert args.solver_threads == 2

    def test_serve_rejects_bad_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--port", "not-a-port"])


class TestLintCommand:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("REP001", "REP201", "REP202", "REP203", "REP204"):
            assert rule in out
        assert "allow-shared-state" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\n\nasync def h():\n    time.sleep(1)\n"
        )
        assert main(["lint", str(tmp_path)]) == 1
        assert "REP201" in capsys.readouterr().out

    def test_json_report_shape(self, tmp_path, capsys):
        import json

        (tmp_path / "bad.py").write_text(
            "import time\n\nasync def h():\n    time.sleep(1)\n"
        )
        assert main(["lint", "--json", "--rules", "REP2xx", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["rules"] == ["REP201", "REP202", "REP203", "REP204"]
        assert report["count"] == 1
        assert report["findings"][0]["rule"] == "REP201"

    def test_rule_family_selection_skips_other_pass(self, tmp_path, capsys):
        # REP001 material only; a REP2xx-only run must not report it.
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", "--rules", "REP2xx", str(tmp_path)]) == 0
        assert main(["lint", "--rules", "REP001", str(tmp_path)]) == 1

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rules", "REP999", "src/repro"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
