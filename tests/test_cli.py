"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.name == "fig3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])


class TestCommands:
    def test_model(self, capsys):
        assert main(["model", "-n", "64", "-f", "16", "-l", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "injection_wait" in out
        assert "latency" in out

    def test_model_bad_size_is_clean_error(self, capsys):
        assert main(["model", "-n", "100"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_sweep(self, capsys):
        assert main(["sweep", "-n", "64", "-f", "16", "--points", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 5  # header + separator + 4 rows

    def test_saturation(self, capsys):
        assert main(["saturation", "-n", "64", "-f", "16,32"]) == 0
        out = capsys.readouterr().out
        assert "flit load" in out

    def test_model_with_pattern(self, capsys):
        assert main(
            [
                "model",
                "-n",
                "16",
                "-f",
                "16",
                "-l",
                "0.05",
                "--pattern",
                "hotspot",
                "--hotspot-fraction",
                "0.2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "pattern=hotspot" in out
        assert "latency" in out

    def test_sweep_with_pattern(self, capsys):
        assert main(
            ["sweep", "-n", "16", "-f", "16", "--points", "4", "--pattern", "tornado"]
        ) == 0
        out = capsys.readouterr().out
        assert "tornado" in out
        assert out.count("\n") >= 5

    def test_saturation_with_pattern(self, capsys):
        assert main(
            ["saturation", "-n", "16", "-f", "16", "--pattern", "bit-reversal"]
        ) == 0
        assert "bit-reversal" in capsys.readouterr().out

    def test_simulate_with_pattern(self, capsys):
        rc = main(
            [
                "simulate",
                "-n",
                "16",
                "-f",
                "16",
                "-l",
                "0.04",
                "--pattern",
                "transpose",
                "--warmup",
                "300",
                "--measure",
                "1200",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pattern: transpose" in out
        assert "model prediction" in out

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["model", "--pattern", "zipf"])

    def test_scalar_with_pattern_is_clean_error(self, capsys):
        rc = main(
            ["sweep", "-n", "16", "-f", "16", "--pattern", "tornado", "--scalar"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["event", "flit", "buffered"])
    def test_simulate_all_engines(self, capsys, engine):
        rc = main(
            [
                "simulate",
                "-n",
                "16",
                "-f",
                "16",
                "-l",
                "0.05",
                "--simulator",
                engine,
                "--warmup",
                "300",
                "--measure",
                "1500",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency" in out and "model prediction" in out

    def test_info(self, capsys):
        assert main(["info", "-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "links" in out and "<0,1>" in out

    def test_experiment_crosscheck(self, capsys):
        assert main(["experiment", "crosscheck"]) == 0
        assert "cross-validation" in capsys.readouterr().out
