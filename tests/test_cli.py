"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.name == "fig3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])


class TestCommands:
    def test_model(self, capsys):
        assert main(["model", "-n", "64", "-f", "16", "-l", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "injection_wait" in out
        assert "latency" in out

    def test_model_bad_size_is_clean_error(self, capsys):
        assert main(["model", "-n", "100"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_sweep(self, capsys):
        assert main(["sweep", "-n", "64", "-f", "16", "--points", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 5  # header + separator + 4 rows

    def test_saturation(self, capsys):
        assert main(["saturation", "-n", "64", "-f", "16,32"]) == 0
        out = capsys.readouterr().out
        assert "flit load" in out

    def test_model_with_pattern(self, capsys):
        assert main(
            [
                "model",
                "-n",
                "16",
                "-f",
                "16",
                "-l",
                "0.05",
                "--pattern",
                "hotspot",
                "--hotspot-fraction",
                "0.2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "pattern=hotspot" in out
        assert "latency" in out

    def test_sweep_with_pattern(self, capsys):
        assert main(
            ["sweep", "-n", "16", "-f", "16", "--points", "4", "--pattern", "tornado"]
        ) == 0
        out = capsys.readouterr().out
        assert "tornado" in out
        assert out.count("\n") >= 5

    def test_saturation_with_pattern(self, capsys):
        assert main(
            ["saturation", "-n", "16", "-f", "16", "--pattern", "bit-reversal"]
        ) == 0
        assert "bit-reversal" in capsys.readouterr().out

    def test_simulate_with_pattern(self, capsys):
        rc = main(
            [
                "simulate",
                "-n",
                "16",
                "-f",
                "16",
                "-l",
                "0.04",
                "--pattern",
                "transpose",
                "--warmup",
                "300",
                "--measure",
                "1200",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pattern: transpose" in out
        assert "model prediction" in out

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["model", "--pattern", "zipf"])

    def test_scalar_with_pattern_is_clean_error(self, capsys):
        rc = main(
            ["sweep", "-n", "16", "-f", "16", "--pattern", "tornado", "--scalar"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["event", "flit", "buffered"])
    def test_simulate_all_engines(self, capsys, engine):
        rc = main(
            [
                "simulate",
                "-n",
                "16",
                "-f",
                "16",
                "-l",
                "0.05",
                "--simulator",
                engine,
                "--warmup",
                "300",
                "--measure",
                "1500",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency" in out and "model prediction" in out

    def test_info(self, capsys):
        assert main(["info", "-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "links" in out and "<0,1>" in out

    def test_experiment_crosscheck(self, capsys):
        assert main(["experiment", "crosscheck"]) == 0
        assert "cross-validation" in capsys.readouterr().out

    def test_patterns_lists_registry(self, capsys):
        from repro.traffic.spec import available_patterns

        assert main(["patterns"]) == 0
        out = capsys.readouterr().out
        for name in available_patterns():
            assert name in out

    def test_design_table(self, capsys):
        rc = main(
            [
                "design",
                "--families",
                "bft",
                "--sizes",
                "16,64",
                "--flits",
                "16",
                "--patterns",
                "uniform",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cheapest feasible" in out
        assert "Pareto frontier" in out

    def test_design_json(self, capsys):
        import json

        rc = main(
            [
                "design",
                "--families",
                "bft,hypercube",
                "--sizes",
                "16",
                "--flits",
                "16",
                "--patterns",
                "uniform",
                "--json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert {e["family"] for e in data["evaluations"]} == {"bft", "hypercube"}
        assert data["cheapest_feasible"] is not None

    def test_design_drops_unrealizable_sizes(self, capsys):
        # 32 is a power of two but not of four: hypercube keeps it, bft drops it.
        rc = main(
            [
                "design",
                "--families",
                "bft,hypercube",
                "--sizes",
                "16,32",
                "--flits",
                "16",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "dimension=5" in out
        assert "processors=32" not in out

    def test_design_large_exponent_sizes_realizable(self, capsys):
        # Exponent inversion must not cap out: 2**16 = 65536 dimensions=16.
        rc = main(
            [
                "design",
                "--families",
                "kary-ncube",
                "--radix",
                "2",
                "--sizes",
                "65536",
                "--flits",
                "16",
            ]
        )
        assert rc == 0
        assert "dimensions=16" in capsys.readouterr().out

    def test_design_no_realizable_size_is_clean_error(self, capsys):
        rc = main(["design", "--families", "bft", "--sizes", "32", "--flits", "16"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_design_bad_sizes_is_clean_error(self, capsys):
        rc = main(["design", "--families", "bft", "--sizes", "big", "--flits", "16"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_experiment_design(self, capsys):
        assert main(["experiment", "design"]) == 0
        assert "CM-5-class sizing" in capsys.readouterr().out
