"""Tests for repro.config: Workload and SimConfig semantics."""

from __future__ import annotations

import math

import pytest

from repro import ConfigurationError, SimConfig, Workload


class TestWorkload:
    def test_flit_load_round_trip(self):
        wl = Workload.from_flit_load(0.05, 16)
        assert math.isclose(wl.flit_load, 0.05)
        assert math.isclose(wl.injection_rate, 0.05 / 16)

    def test_direct_construction(self):
        wl = Workload(message_flits=32, injection_rate=0.001)
        assert wl.flit_load == pytest.approx(0.032)

    def test_zero_rate_is_legal(self):
        wl = Workload(16, 0.0)
        assert wl.flit_load == 0.0

    @pytest.mark.parametrize("flits", [0, -1, 2.5, "16"])
    def test_invalid_message_flits_rejected(self, flits):
        with pytest.raises(ConfigurationError):
            Workload(flits, 0.01)

    @pytest.mark.parametrize("rate", [-0.1, float("nan")])
    def test_invalid_rate_rejected(self, rate):
        with pytest.raises(ConfigurationError):
            Workload(16, rate)

    def test_from_flit_load_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Workload.from_flit_load(-0.01, 16)

    def test_from_flit_load_rejects_bad_flits(self):
        with pytest.raises(ConfigurationError):
            Workload.from_flit_load(0.01, 0)

    def test_with_injection_rate(self):
        wl = Workload(16, 0.01)
        wl2 = wl.with_injection_rate(0.02)
        assert wl2.injection_rate == 0.02
        assert wl2.message_flits == 16
        assert wl.injection_rate == 0.01  # original untouched

    def test_with_flit_load(self):
        wl = Workload(16, 0.01)
        wl2 = wl.with_flit_load(0.32)
        assert wl2.injection_rate == pytest.approx(0.02)

    def test_frozen(self):
        wl = Workload(16, 0.01)
        with pytest.raises(AttributeError):
            wl.injection_rate = 0.5  # type: ignore[misc]

    def test_equality(self):
        assert Workload(16, 0.01) == Workload(16, 0.01)
        assert Workload(16, 0.01) != Workload(32, 0.01)


class TestSimConfig:
    def test_defaults_consistent(self):
        cfg = SimConfig()
        assert cfg.measure_start == cfg.warmup_cycles
        assert cfg.measure_end == cfg.warmup_cycles + cfg.measure_cycles
        assert cfg.cutoff_cycles > cfg.measure_end

    def test_explicit_max_cycles(self):
        cfg = SimConfig(warmup_cycles=10, measure_cycles=20, max_cycles=100)
        assert cfg.cutoff_cycles == 100

    def test_drain_factor_default_cutoff(self):
        cfg = SimConfig(warmup_cycles=100, measure_cycles=100, drain_factor=3.0)
        assert cfg.cutoff_cycles == pytest.approx(600)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ConfigurationError):
            SimConfig(warmup_cycles=-1)

    def test_rejects_zero_measure(self):
        with pytest.raises(ConfigurationError):
            SimConfig(measure_cycles=0)

    def test_rejects_small_max_cycles(self):
        with pytest.raises(ConfigurationError):
            SimConfig(warmup_cycles=100, measure_cycles=100, max_cycles=150)

    def test_rejects_small_drain_factor(self):
        with pytest.raises(ConfigurationError):
            SimConfig(drain_factor=0.5)
