"""Tests for process-parallel sweep execution."""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

from repro import ButterflyFatTree, SimConfig
from repro.simulation import simulated_latency_curve
from repro.util.parallel import parallel_map


def _square(x: float) -> float:
    return x * x


class TestParallelMap:
    def test_serial_matches_map(self):
        items = [1.0, 2.0, 3.0]
        assert parallel_map(_square, items) == [1.0, 4.0, 9.0]

    def test_parallel_matches_serial(self):
        items = list(np.linspace(0, 10, 17))
        serial = parallel_map(_square, items, processes=1)
        parallel = parallel_map(_square, items, processes=3)
        assert serial == parallel

    def test_order_preserved(self):
        items = list(range(20, 0, -1))
        out = parallel_map(_square, [float(x) for x in items], processes=4)
        assert out == [float(x * x) for x in items]

    def test_single_item_runs_serial(self):
        assert parallel_map(_square, [3.0], processes=8) == [9.0]

    def test_empty(self):
        assert parallel_map(_square, [], processes=4) == []

    def test_chunksize_greater_than_one_preserves_results_and_order(self):
        items = [float(x) for x in range(23)]
        expected = [x * x for x in items]
        for chunksize in (2, 5, 8, 23, 50):
            out = parallel_map(_square, items, processes=3, chunksize=chunksize)
            assert out == expected, f"chunksize={chunksize}"

    def test_chunksize_matches_serial_on_grid_sweep(self):
        items = list(np.linspace(0.0, 4.0, 17))
        serial = parallel_map(_square, items, processes=1)
        chunked = parallel_map(_square, items, processes=4, chunksize=5)
        assert serial == chunked

    def test_empty_input_with_chunksize_and_workers(self):
        assert parallel_map(_square, [], processes=4, chunksize=16) == []

    def test_chunksize_exceeding_item_count(self):
        # One chunk swallows the whole work list; order must survive.
        items = [float(x) for x in range(7, 0, -1)]
        out = parallel_map(_square, items, processes=3, chunksize=100)
        assert out == [x * x for x in items]

    def test_chunksize_equal_to_item_count(self):
        items = [1.0, 2.0, 3.0]
        out = parallel_map(_square, items, processes=2, chunksize=3)
        assert out == [1.0, 4.0, 9.0]

    def test_serial_path_ignores_chunksize(self):
        items = [2.0, 4.0]
        assert parallel_map(_square, items, processes=1, chunksize=999) == [4.0, 16.0]

    def test_generator_input_is_materialized(self):
        out = parallel_map(_square, (float(x) for x in range(5)), processes=2)
        assert out == [0.0, 1.0, 4.0, 9.0, 16.0]


@pytest.mark.skipif(os.cpu_count() == 1, reason="needs multiple cores to be meaningful")
class TestParallelCurve:
    def test_parallel_curve_bit_identical(self, bft64):
        cfg = SimConfig(warmup_cycles=500, measure_cycles=3000, seed=17)
        loads = [0.02, 0.05, 0.08, 0.11]
        serial = simulated_latency_curve(bft64, 16, loads, cfg, processes=1)
        parallel = simulated_latency_curve(bft64, 16, loads, cfg, processes=4)
        assert np.array_equal(serial.latencies, parallel.latencies)

    def test_parallel_curve_finite(self, bft64):
        cfg = SimConfig(warmup_cycles=500, measure_cycles=3000, seed=18)
        curve = simulated_latency_curve(bft64, 16, [0.03, 0.07], cfg, processes=2)
        assert all(math.isfinite(x) for x in curve.latencies)
