"""Tests for fault injection and degraded-mode evaluation.

Covers the fault grammar and spec, topology masking, degraded traffic
renormalization, the four-family acceptance matrix (model/batch
bit-identity with one dead link per family), the BFT model-vs-simulation
crosscheck on a degraded fabric, partition detection, the robustness
satellites (corrupt-registry tolerance + doctor, HotspotSpec input
hardening, diagnostic ConvergenceError, replication rescue seeding) and
the fault-aware CLI surface.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import numpy as np
import pytest

from repro.config import SimConfig, Workload
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    PartitionedNetworkError,
)
from repro.faults import (
    DegradedTrafficSpec,
    FaultedTopology,
    FaultSpec,
    degraded_spec,
    link_ref,
    parse_link_ref,
    parse_switch_ref,
)
from repro.runs import Runner, RunRegistry, Scenario
from repro.simulation.runner import run_replications
from repro.simulation.wormhole_sim import EventDrivenWormholeSimulator
from repro.topology.butterfly_fattree import ButterflyFatTree
from repro.topology.hypercube import Hypercube
from repro.traffic.flows import bft_channel_flows, masked_channel_flows
from repro.traffic.spec import HotspotSpec
from repro.util.fixedpoint import fixed_point

#: One non-partitioning dead link per family: a redundant up link for the
#: trees (the sibling parent survives), an injection link for the cubes
#: (dimension-order routing is single-path, so any *network* link cut
#: partitions a pair — that case is tested separately).
FAMILY_MATRIX = [
    (dict(topology="bft", num_processors=16), "up:1:0"),
    (
        dict(
            topology="generalized-fattree",
            num_processors=8,
            children=2,
            parents=2,
            levels=3,
        ),
        "up:1:0",
    ),
    (dict(topology="hypercube", num_processors=16), "up:0:1"),
    (dict(topology="kary-ncube", num_processors=9, radix=3), "up:0:1"),
]


def scenario_for(shape: dict, dead: str | None, **overrides) -> Scenario:
    defaults = dict(
        message_flits=16,
        sweep_points=0,
        faults=None if dead is None else {"dead_links": [dead]},
    )
    defaults.update(shape)
    defaults.update(overrides)
    return Scenario(**defaults)


class TestFaultSpec:
    def test_json_round_trip(self):
        spec = FaultSpec(dead_links=("up:1:0", "down:1:2"), seed=3)
        again = FaultSpec.from_json(spec.to_json())
        assert again == spec

    def test_trivial(self):
        assert FaultSpec().is_trivial()
        assert not FaultSpec(dead_links=("up:0:0",)).is_trivial()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dead_links": ("sideways:0:0",)},
            {"dead_links": ("up:0",)},
            {"dead_links": ("up:0:x",)},
            {"dead_switches": ("0:0",)},  # level 0 is a PE, not a switch
            {"random_link_failures": -1},
            {"random_link_failure_rate": 1.5},
            {"random_link_failures": True},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSpec(**kwargs)

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.from_json({"dead_link": ["up:0:0"]})

    def test_ref_parsers(self):
        assert parse_link_ref("up:1:0") == (0, 1, 0)
        assert parse_switch_ref("2:1") == (2, 1)
        with pytest.raises(ConfigurationError):
            parse_link_ref("bogus")

    def test_link_ref_round_trip(self):
        topo = ButterflyFatTree(16)
        spec = FaultSpec(dead_links=("up:1:3",))
        (dead,) = spec.resolve(topo).dead_links
        assert link_ref(topo, dead) == "up:1:3"

    def test_random_failures_seeded(self):
        topo = ButterflyFatTree(16)
        a = FaultSpec(random_link_failures=2, seed=5).resolve(topo)
        b = FaultSpec(random_link_failures=2, seed=5).resolve(topo)
        c = FaultSpec(random_link_failures=2, seed=6).resolve(topo)
        assert a.dead_links == b.dead_links
        assert len(a.dead_links) == 2
        # Different seeds draw different links (16-PE BFT has enough links
        # that a collision would be a 1-in-many accident, not a law).
        assert a.dead_links != c.dead_links

    def test_too_many_random_failures_rejected(self):
        topo = ButterflyFatTree(16)
        with pytest.raises(ConfigurationError):
            FaultSpec(random_link_failures=10_000).resolve(topo)


class TestFaultedTopology:
    def test_dead_injection_link_kills_terminal(self):
        topo = FaultedTopology(ButterflyFatTree(16), {"dead_links": ["up:0:1"]})
        assert topo.dead_terminals == frozenset({1})
        assert topo.num_processors == 16
        with pytest.raises(PartitionedNetworkError):
            topo.injection_options(1)

    def test_masked_routing_filters_dead_links(self):
        base = ButterflyFatTree(16)
        spec = FaultSpec(dead_links=("up:1:0",))
        (dead,) = spec.resolve(base).dead_links
        topo = FaultedTopology(base, spec)
        for node in range(base.num_processors):
            opts = topo.injection_options(node)
            assert dead not in opts.links
        # Path lengths are untouched: masking filters minimal routes, it
        # never detours.
        assert topo.path_length(0, 5) == base.path_length(0, 5)

    def test_cut_hypercube_partitions(self):
        # d=2: "up:1:0" is router 0's only dimension-0 link; e-cube routing
        # has no alternative path, so the surviving pairs are disconnected.
        with pytest.raises(PartitionedNetworkError):
            FaultedTopology(Hypercube(2), {"dead_links": ["up:1:0"]}).route_options(
                4, 1
            )

    def test_groups_rebuilt_without_dead_links(self):
        base = ButterflyFatTree(16)
        spec = FaultSpec(dead_links=("up:1:0",))
        (dead,) = spec.resolve(base).dead_links
        topo = FaultedTopology(base, spec)
        for group in topo.groups:
            if dead in group:
                assert list(group) == [dead]  # singleton: never granted


class TestDegradedTraffic:
    def test_rows_renormalized(self):
        topo = FaultedTopology(ButterflyFatTree(16), {"dead_links": ["up:0:1"]})
        spec = degraded_spec(topo)
        assert isinstance(spec, DegradedTrafficSpec)
        matrix = spec.destination_matrix(16)
        assert np.all(matrix[1, :] == 0.0)
        assert np.all(matrix[:, 1] == 0.0)
        live = [i for i in range(16) if i != 1]
        np.testing.assert_allclose(matrix[live].sum(axis=1), 1.0)

    def test_no_dead_terminals_is_identity(self):
        topo = FaultedTopology(ButterflyFatTree(16), {"dead_links": ["up:1:0"]})
        assert topo.dead_terminals == frozenset()
        # No terminal died, so the pattern needs no renormalization.
        assert not isinstance(degraded_spec(topo), DegradedTrafficSpec)


class TestMaskedFlows:
    @pytest.mark.parametrize("n", [16, 64])
    def test_matches_closed_form_bft_when_fault_free(self, n):
        from repro.traffic.spec import UniformSpec

        topo = ButterflyFatTree(n)
        reference = bft_channel_flows(topo, UniformSpec())
        masked = masked_channel_flows(topo)
        np.testing.assert_allclose(masked.link_rate, reference.link_rate)
        np.testing.assert_allclose(
            masked.source_distance, reference.source_distance
        )
        assert len(masked.edge_flow) == len(reference.edge_flow)
        for got, want in zip(masked.edge_flow, reference.edge_flow):
            assert got == pytest.approx(want)


class TestFamilyMatrix:
    @pytest.mark.parametrize(
        "shape,dead", FAMILY_MATRIX, ids=[s["topology"] for s, _ in FAMILY_MATRIX]
    )
    def test_model_and_batch_bit_identical_under_faults(self, shape, dead):
        runner = Runner()
        scenario = scenario_for(shape, dead)
        model = runner.run(scenario.with_backend("model"))
        batch = runner.run(scenario.with_backend("batch"))
        assert (
            model.metrics["point"]["latency"] == batch.metrics["point"]["latency"]
        )
        assert (
            model.metrics["saturation"]["flit_load"]
            == batch.metrics["saturation"]["flit_load"]
        )
        faults = model.metrics["faults"]
        assert faults["dead_links"] == [dead]

    @pytest.mark.parametrize(
        "shape",
        [s for s, _ in FAMILY_MATRIX[:2]],
        ids=[s["topology"] for s, _ in FAMILY_MATRIX[:2]],
    )
    def test_dead_network_link_costs_capacity(self, shape):
        # For the tree families the dead up link removes real bandwidth:
        # the degraded fabric must saturate strictly earlier.
        runner = Runner()
        nominal = runner.run(scenario_for(shape, None))
        degraded = runner.run(scenario_for(shape, "up:1:0"))
        assert (
            degraded.metrics["saturation"]["flit_load"]
            < nominal.metrics["saturation"]["flit_load"]
        )

    def test_bft_simulation_matches_model_on_degraded_fabric(self):
        runner = Runner()
        probe = runner.run(scenario_for(dict(topology="bft", num_processors=16), "up:1:0"))
        sat = probe.metrics["saturation"]["flit_load"]
        scenario = scenario_for(
            dict(topology="bft", num_processors=16),
            "up:1:0",
            flit_load=0.5 * sat,
            replications=3,
            seed=11,
        )
        model = runner.run(scenario.with_backend("model"))
        sim = runner.run(scenario.with_backend("simulate"))
        m = model.metrics["point"]["latency"]
        s = sim.metrics["point"]["latency"]
        assert abs(m - s) / s < 0.10
        health = sim.metrics["replication_health"]
        assert health["completed"] == health["requested"] == 3
        assert sim.metrics["faults"]["dead_links"] == ["up:1:0"]

    def test_partitioning_scenario_raises_everywhere(self):
        scenario = scenario_for(
            dict(topology="hypercube", num_processors=4, dimension=2), "up:1:0"
        )
        runner = Runner()
        for backend in ("model", "batch", "simulate"):
            with pytest.raises(PartitionedNetworkError):
                runner.run(scenario.with_backend(backend))


class TestScenarioFaults:
    def test_trivial_faults_canonicalized_to_none(self):
        assert Scenario(faults={}).faults is None
        assert Scenario(faults={"dead_links": []}).faults is None

    def test_faults_survive_json_round_trip(self):
        sc = Scenario(faults={"dead_links": ["up:1:0"]})
        again = Scenario.from_json(sc.to_json())
        assert again.fault_spec() == sc.fault_spec()
        assert "faults(" in sc.describe()

    def test_bad_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(faults={"dead_links": ["sideways:0:0"]})


class TestDesignFaults:
    def test_requirements_fault_spec(self):
        from repro.design import Requirements

        req = Requirements(
            demand_flit_load=0.02,
            latency_slo=75.0,
            survives_faults=2,
            fault_seed=9,
        )
        spec = req.fault_spec()
        assert spec.random_link_failures == 2 and spec.seed == 9
        assert (
            Requirements(demand_flit_load=0.02, latency_slo=75.0).fault_spec()
            is None
        )
        with pytest.raises(ConfigurationError):
            Requirements(
                demand_flit_load=0.02, latency_slo=75.0, survives_faults=-1
            )

    def test_explore_marks_partitioned_candidates(self):
        from repro.design import DesignSpace, FamilySpace, Requirements, explore
        from repro.design.evaluate import clear_metrics_cache

        clear_metrics_cache()
        space = DesignSpace(
            families=(FamilySpace.build("bft", processors=(16,)),),
            message_lengths=(16,),
        )
        # Seed 7 draws a level-1 *down* link on the 16-PE BFT: minimal
        # fault-oblivious routing cannot route around it, so the candidate
        # must be reported as partitioned rather than silently passing.
        result = explore(
            space,
            Requirements(
                demand_flit_load=0.02,
                survives_faults=1,
                fault_seed=7,
                latency_slo=200.0,
            ),
        )
        (ev,) = result.evaluations
        assert ev.degraded is None
        assert any("partitioned" in v for v in ev.violations)
        assert result.to_json()["requirements"]["survives_faults"] == 1

    def test_explore_survivable_fault_degrades_metrics(self):
        from repro.design import DesignSpace, FamilySpace, Requirements, explore
        from repro.design.evaluate import clear_metrics_cache

        clear_metrics_cache()
        space = DesignSpace(
            families=(FamilySpace.build("bft", processors=(16,)),),
            message_lengths=(16,),
        )
        nominal = explore(
            space, Requirements(demand_flit_load=0.02, latency_slo=200.0)
        )
        # Seed 20 draws a redundant up link (verified deterministic): the
        # fabric survives with strictly less headroom.
        survived = explore(
            space,
            Requirements(
                demand_flit_load=0.02,
                survives_faults=1,
                fault_seed=20,
                latency_slo=200.0,
            ),
        )
        (ev,) = survived.evaluations
        assert ev.degraded is not None
        (nom_ev,) = nominal.evaluations
        assert (
            ev.degraded.saturation_flit_load < nom_ev.metrics.saturation_flit_load
        )


class TestRegistryRobustness:
    def _seed_registry(self, tmp_path):
        registry = RunRegistry(tmp_path)
        runner = Runner(registry=registry)
        result = runner.run(
            scenario_for(dict(topology="bft", num_processors=16), None)
        )
        return registry, result

    def test_corrupt_lines_skipped_counted_warned_once(self, tmp_path):
        registry, result = self._seed_registry(tmp_path)
        with registry.records_path.open("a", encoding="utf-8") as fh:
            fh.write('{"truncated": \n')
            fh.write("[1, 2, 3]\n")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert registry.ids() == [result.run_id]
        assert registry.skipped_corrupt == 2
        assert len(caught) == 1
        assert "doctor" in str(caught[0].message)
        # list/diff keep working end-to-end
        assert registry.load("latest").run_id == result.run_id
        diff = registry.diff(result.run_id, "latest")
        assert diff is not None

    def test_doctor_reports_and_quarantines(self, tmp_path):
        registry, result = self._seed_registry(tmp_path)
        with registry.records_path.open("a", encoding="utf-8") as fh:
            fh.write("garbage line\n")
        report = registry.doctor()
        assert not report.healthy
        assert report.ok == 1 and len(report.corrupt) == 1
        assert report.quarantined == 0  # report-only by default
        quarantined = registry.doctor(quarantine=True)
        assert quarantined.quarantined == 1
        assert registry.quarantine_path.read_text().strip() == "garbage line"
        after = registry.doctor()
        assert after.healthy and after.ok == 1
        assert registry.load(result.run_id).run_id == result.run_id

    def test_doctor_empty_registry(self, tmp_path):
        report = RunRegistry(tmp_path).doctor()
        assert report.healthy and report.total_records == 0


class TestHotspotHardening:
    @pytest.mark.parametrize("bad", ["0.5", None, True, float("nan"), 1.5])
    def test_bad_fraction_is_configuration_error(self, bad):
        with pytest.raises(ConfigurationError):
            HotspotSpec(fraction=bad)

    def test_bool_target_rejected(self):
        with pytest.raises(ConfigurationError):
            HotspotSpec(target=True)


class TestConvergenceDiagnostics:
    def test_fixed_point_error_carries_diagnostics(self):
        with pytest.raises(ConvergenceError) as excinfo:
            fixed_point(lambda x: -x, np.array([1.0, 2.0]), max_iter=50)
        err = excinfo.value
        assert err.iterations == 50
        assert err.residual > 0
        assert err.worst_component == 1
        assert "residual" in str(err)


class _CrashOnFirstSeed(EventDrivenWormholeSimulator):
    """Simulator that crashes on the first seed it ever sees."""

    crashed: list = []

    def run(self):
        if not self.crashed:
            self.crashed.append(self.config.seed)
            raise RuntimeError("injected crash")
        return super().run()


class TestReplicationRescue:
    def test_crashed_replication_is_rescued_deterministically(self):
        _CrashOnFirstSeed.crashed = []
        topo = ButterflyFatTree(16)
        wl = Workload.from_flit_load(0.04, 16)
        cfg = SimConfig(warmup_cycles=200.0, measure_cycles=800.0, seed=3)
        rep = run_replications(
            topo, wl, cfg, replications=2, simulator_cls=_CrashOnFirstSeed
        )
        assert len(rep.results) == 2
        assert rep.rescued == 1
        assert rep.failures == ()

    def test_persistent_crash_recorded_not_raised(self):
        # First slot fails its original seed AND both rescue seeds; second
        # slot runs clean. The aggregate degrades to one replication and
        # records the dead slot instead of raising.
        crash_budget = [3]

        class CrashThreeTimes(EventDrivenWormholeSimulator):
            def run(self):
                if crash_budget[0] > 0:
                    crash_budget[0] -= 1
                    raise RuntimeError("hardware on fire")
                return super().run()

        topo = ButterflyFatTree(16)
        wl = Workload.from_flit_load(0.04, 16)
        cfg = SimConfig(warmup_cycles=200.0, measure_cycles=800.0, seed=3)
        rep = run_replications(
            topo, wl, cfg, replications=2, simulator_cls=CrashThreeTimes
        )
        assert len(rep.results) == 1
        assert len(rep.failures) == 1
        assert rep.failures[0].attempts == 3
        assert "hardware on fire" in rep.failures[0].error

    def test_all_crash_raises_last_error(self):
        class AlwaysCrash(EventDrivenWormholeSimulator):
            def run(self):
                raise RuntimeError("hardware on fire")

        topo = ButterflyFatTree(16)
        wl = Workload.from_flit_load(0.04, 16)
        cfg = SimConfig(warmup_cycles=200.0, measure_cycles=800.0, seed=3)
        with pytest.raises(RuntimeError):
            run_replications(
                topo, wl, cfg, replications=1, simulator_cls=AlwaysCrash
            )

    def test_configuration_error_not_retried(self):
        calls = []

        class BadConfig(EventDrivenWormholeSimulator):
            def run(self):
                calls.append(1)
                raise ConfigurationError("deterministically wrong")

        topo = ButterflyFatTree(16)
        wl = Workload.from_flit_load(0.04, 16)
        cfg = SimConfig(warmup_cycles=200.0, measure_cycles=800.0, seed=3)
        with pytest.raises(ConfigurationError):
            run_replications(
                topo, wl, cfg, replications=2, simulator_cls=BadConfig
            )
        assert len(calls) == 1


class TestFaultCli:
    def test_run_with_kill_links(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--topology",
                "bft",
                "-n",
                "16",
                "--kill-links",
                "up:1:0",
                "--points",
                "0",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["faults"]["dead_links"] == ["up:1:0"]

    def test_partitioning_kill_is_exit_2(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--topology",
                "hypercube",
                "-n",
                "4",
                "--dimension",
                "2",
                "--kill-links",
                "up:1:0",
                "--points",
                "0",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_link_ref_is_exit_2(self, capsys):
        from repro.cli import main

        assert main(["run", "--kill-links", "bogus", "--points", "0"]) == 2
        assert "direction:level:index" in capsys.readouterr().err

    def test_runs_doctor_cli(self, tmp_path, capsys):
        from repro.cli import main

        registry = str(tmp_path)
        assert (
            main(
                [
                    "run",
                    "--topology",
                    "bft",
                    "-n",
                    "16",
                    "--points",
                    "0",
                    "--save",
                    "--registry",
                    registry,
                ]
            )
            == 0
        )
        with (tmp_path / "runs.jsonl").open("a", encoding="utf-8") as fh:
            fh.write("{broken\n")
        capsys.readouterr()
        assert main(["runs", "doctor", "--registry", registry]) == 0
        assert "1 corrupt" in capsys.readouterr().out
        assert (
            main(["runs", "doctor", "--registry", registry, "--quarantine"]) == 0
        )
        capsys.readouterr()
        assert main(["runs", "list", "--registry", registry]) == 0
        assert "1 run(s)" in capsys.readouterr().out

    def test_bad_hotspot_fraction_is_exit_2(self, capsys):
        from repro.cli import main

        assert main(["model", "--pattern", "hotspot", "--hotspot-fraction", "1.5"]) == 2
        assert "hotspot_fraction" in capsys.readouterr().err


class TestFaultExperiment:
    def test_quick_mode_rows(self):
        from repro.experiments import run_fault_degradation

        result = run_fault_degradation()
        assert len(result.rows) == 12  # 4 families x k in {0, 1, 2}
        by_family = {}
        for row in result.rows:
            by_family.setdefault(row.topology, []).append(row)
        for family, rows in by_family.items():
            assert rows[0].failures == 0 and rows[0].status == "ok"
            assert rows[0].retained == pytest.approx(1.0)
        # The unidirectional torus has no path diversity: any network link
        # failure must partition it, and the experiment says so.
        torus = by_family["kary-ncube"]
        assert all(r.status == "partitioned" for r in torus[1:])
        assert "partitioned" in result.render()
        payload = result.to_json()
        assert payload["fault_seed"] == 7
