"""Tests for the input-buffered virtual-channel simulator."""

from __future__ import annotations

import math

import pytest

from repro import (
    ButterflyFatTree,
    ConfigurationError,
    KaryNCube,
    SimConfig,
    TraceTraffic,
    Workload,
    simulate,
    simulate_buffered,
)
from repro.simulation.buffered_sim import BufferedWormholeSimulator, dateline_policy


def _trace_cfg(measure=200.0, seed=0):
    return SimConfig(warmup_cycles=0, measure_cycles=measure, seed=seed, drain_factor=100)


class TestValidation:
    def test_rejects_bad_parameters(self, bft16):
        wl = Workload(16, 0.0)
        cfg = _trace_cfg()
        with pytest.raises(ConfigurationError):
            BufferedWormholeSimulator(bft16, wl, cfg, virtual_channels=0)
        with pytest.raises(ConfigurationError):
            BufferedWormholeSimulator(bft16, wl, cfg, buffer_flits=0)
        with pytest.raises(ConfigurationError):
            BufferedWormholeSimulator(bft16, wl, cfg, vc_policy="bogus")
        with pytest.raises(ConfigurationError):
            BufferedWormholeSimulator(
                bft16, wl, cfg, vc_policy="dateline", virtual_channels=1
            )

    def test_dateline_requires_torus(self, bft16):
        with pytest.raises(ConfigurationError):
            dateline_policy(bft16)


class TestZeroContention:
    @pytest.mark.parametrize("src,dst", [(0, 1), (0, 63), (17, 42)])
    def test_single_message_matches_other_sims(self, bft64, src, dst):
        res = simulate_buffered(
            bft64,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, src, dst)]),
        )
        assert res.latency_mean == 16 + bft64.path_length(src, dst) - 1

    def test_buffer_depth_one_halves_streaming(self, bft64):
        """B=1 + one-cycle credit loop => one flit every two cycles:
        latency = D + 2*(F-1) for a lone message."""
        res = simulate_buffered(
            bft64,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 0, 63)]),
            buffer_flits=1,
        )
        assert res.latency_mean == 6 + 2 * (16 - 1)

    def test_deep_buffers_do_not_speed_up_lone_message(self, bft64):
        res = simulate_buffered(
            bft64,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 0, 63)]),
            buffer_flits=32,
        )
        assert res.latency_mean == 16 + 6 - 1

    def test_contention_pair_matches_other_sims(self, bft64):
        res = simulate_buffered(
            bft64,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 1, 0), (0.0, 2, 0)]),
        )
        assert sorted([res.latency_min, res.latency_max]) == [17.0, 33.0]

    def test_virtual_channels_share_physical_bandwidth(self, bft64):
        """Two worms multiplexing one ejection link with 2 VCs cannot beat
        the single-VC FCFS outcome in aggregate: the later of the two
        completions is bandwidth-bound at 2F + D - 1 regardless."""
        res = simulate_buffered(
            bft64,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 1, 0), (0.0, 2, 0)]),
            virtual_channels=2,
        )
        assert res.latency_max >= 2 * 16 - 1  # the link carries 32 flits


class TestLoadedAgreement:
    @pytest.mark.parametrize("load", [0.04, 0.08])
    def test_b2_matches_blocked_in_place(self, bft64, load):
        wl = Workload.from_flit_load(load, 16)
        cfg = SimConfig(warmup_cycles=1500, measure_cycles=6000, seed=5)
        buffered = simulate_buffered(bft64, wl, cfg, keep_samples=False)
        event = simulate(bft64, wl, cfg, keep_samples=False)
        assert buffered.latency_mean == pytest.approx(event.latency_mean, rel=0.05)

    def test_b1_visibly_slower(self, bft64):
        wl = Workload.from_flit_load(0.05, 16)
        cfg = SimConfig(warmup_cycles=1000, measure_cycles=5000, seed=6)
        b1 = simulate_buffered(bft64, wl, cfg, buffer_flits=1, keep_samples=False)
        b2 = simulate_buffered(bft64, wl, cfg, buffer_flits=2, keep_samples=False)
        assert b1.latency_mean > 1.5 * b2.latency_mean

    def test_conservation(self, bft64):
        wl = Workload.from_flit_load(0.06, 16)
        cfg = SimConfig(warmup_cycles=1000, measure_cycles=5000, seed=7)
        res = simulate_buffered(bft64, wl, cfg, keep_samples=False)
        assert res.censored_tagged == 0
        assert res.delivered_flit_rate == pytest.approx(0.06, rel=0.1)

    def test_determinism(self, bft16):
        wl = Workload.from_flit_load(0.08, 16)
        cfg = SimConfig(warmup_cycles=500, measure_cycles=3000, seed=8)
        r1 = simulate_buffered(bft16, wl, cfg, keep_samples=False)
        r2 = simulate_buffered(bft16, wl, cfg, keep_samples=False)
        assert r1.latency_mean == r2.latency_mean


class TestDateline:
    def test_torus_deadlock_free_with_vcs(self, torus8x2):
        wl = Workload.from_flit_load(0.06, 32)
        cfg = SimConfig(warmup_cycles=1500, measure_cycles=6000, seed=9, drain_factor=6.0)
        vc = simulate_buffered(
            torus8x2,
            wl,
            cfg,
            virtual_channels=2,
            vc_policy="dateline",
            keep_samples=False,
        )
        assert vc.censored_tagged == 0
        novc = simulate(torus8x2, wl, cfg, keep_samples=False)
        assert novc.censored_tagged > 0  # physical wormhole ring deadlock

    def test_policy_classification(self, torus8x2):
        policy = dateline_policy(torus8x2)
        # link of node with coord k-1 in dim 0 is the wrap link
        wrap_node = 7  # coords (7, 0)
        dim, is_wrap = policy.classify(wrap_node * 2 + 0)
        assert dim == 0 and is_wrap
        dim, is_wrap = policy.classify(0 * 2 + 0)
        assert dim == 0 and not is_wrap
        # injection links are unconstrained
        dim, _ = policy.classify(torus8x2.num_processors * 2 + 5)
        assert dim == -1

    def test_fat_tree_any_policy_with_vcs_still_correct(self, bft16):
        wl = Workload.from_flit_load(0.1, 16)
        cfg = SimConfig(warmup_cycles=500, measure_cycles=3000, seed=10)
        res = simulate_buffered(
            bft16, wl, cfg, virtual_channels=2, keep_samples=False
        )
        assert res.censored_tagged == 0
        assert res.latency_mean > 0
