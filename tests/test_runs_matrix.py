"""Cross-backend acceptance matrix: every topology family × every backend.

The PR-5 acceptance criteria: ``Scenario(topology=…)`` accepts all four
families, every (family × backend) pair returns the shared
point/saturation/curve metric layout, ``model`` and ``batch`` are
bit-identical per family, records round-trip losslessly through the
registry, and the simulate-vs-model crosscheck stays bounded (half
saturation for the families whose simulators run there; low load for the
virtual-channel-less torus, mirroring ``repro experiment topologies``).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.runs import BACKENDS, TOPOLOGIES, RunRegistry, RunResult, Runner, Scenario, run

#: One tiny representative per family (sized so every backend answers in
#: well under a second; the simulate backend uses short windows below).
FAMILY_SCENARIOS = {
    "bft": dict(topology="bft", num_processors=16),
    "generalized-fattree": dict(
        topology="generalized-fattree", num_processors=8, children=2, parents=2
    ),
    "hypercube": dict(topology="hypercube", num_processors=16),
    "kary-ncube": dict(topology="kary-ncube", num_processors=9, radix=3),
}


def family_scenario(topology: str, **overrides) -> Scenario:
    defaults = dict(
        message_flits=16,
        flit_load=0.03,
        sweep_points=4,
        replications=2,
        warmup_cycles=300.0,
        measure_cycles=1200.0,
        seed=13,
    )
    defaults.update(FAMILY_SCENARIOS[topology])
    defaults.update(overrides)
    return Scenario(**defaults)


def test_the_matrix_is_complete():
    assert set(FAMILY_SCENARIOS) == set(TOPOLOGIES)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
class TestAcceptanceMatrix:
    def test_layout_roundtrip_and_registry(self, topology, backend, tmp_path):
        registry = RunRegistry(tmp_path)
        scenario = family_scenario(topology, backend=backend, label="matrix")
        result = Runner(registry=registry).run(scenario)

        # --- the shared metric layout -----------------------------------
        metrics = result.metrics
        assert metrics["family"]["name"] == topology
        assert metrics["point"]["flit_load"] == scenario.flit_load
        assert metrics["point"]["latency"] > 0
        if backend == "simulate":
            assert metrics["saturation"] is None and metrics["curve"] is None
            assert len(metrics["replications"]) == 2
            assert metrics["point"]["model_prediction"] > 0
        else:
            assert metrics["saturation"]["flit_load"] > 0
            assert len(metrics["curve"]["latencies"]) == 4
            assert metrics["engine"] == ("scalar" if backend == "model" else "batch")
            assert isinstance(metrics["variant"], str)

        # --- lossless JSON round trip and registry save/load ------------
        assert RunResult.from_json(result.to_json()) == result
        assert registry.load(result.run_id) == result
        assert registry.query(topology=topology, backend=backend) == [result]

        # --- and the self-diff is empty ----------------------------------
        assert registry.diff(result.run_id, result.run_id).changed == ()


class TestPerFamilyParity:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_model_and_batch_bit_identical(self, topology):
        scenario = family_scenario(topology, backend="model")
        a = run(scenario)
        b = run(scenario.with_backend("batch"))
        assert a.metrics["point"]["latency"] == b.metrics["point"]["latency"]
        np.testing.assert_array_equal(
            a.metrics["curve"]["latencies"], b.metrics["curve"]["latencies"]
        )
        assert a.metrics["saturation"]["flit_load"] == pytest.approx(
            b.metrics["saturation"]["flit_load"], rel=1e-5
        )

    @pytest.mark.parametrize(
        "topology", ["bft", "generalized-fattree", "hypercube"]
    )
    def test_baseline_differs_from_model(self, topology):
        scenario = family_scenario(topology, sweep_points=0)
        paper = run(scenario)
        prior = run(scenario.with_backend("baseline"))
        assert prior.metrics["variant"] != paper.metrics["variant"]
        assert prior.metrics["point"]["latency"] != paper.metrics["point"]["latency"]

    def test_torus_baseline_is_its_own_model(self):
        # Dally's analysis *is* the prior art for the k-ary n-cube: the
        # family's model and baseline coincide by design.
        scenario = family_scenario("kary-ncube", sweep_points=0)
        model = run(scenario)
        baseline = run(scenario.with_backend("baseline"))
        assert baseline.metrics["variant"] == model.metrics["variant"] == "dally"
        assert (
            baseline.metrics["point"]["latency"]
            == model.metrics["point"]["latency"]
        )

    def test_registry_diff_across_families(self, tmp_path):
        registry = RunRegistry(tmp_path)
        runner = Runner(registry=registry)
        a = runner.run(family_scenario("bft", sweep_points=0))
        b = runner.run(family_scenario("hypercube", sweep_points=0))
        diff = registry.diff(a.run_id, b.run_id)
        keys = {d.key for d in diff.deltas}
        # The shared layout diffs leaf-for-leaf across families ...
        assert {"point.latency", "saturation.flit_load"} <= keys
        # ... while family-specific parameters surface as one-sided keys.
        assert "family.params.processors" in diff.only_a
        assert "family.params.dimension" in diff.only_b


class TestSimulateCrosscheck:
    """Simulate-vs-model agreement, mirroring the ≤10% traffic gate.

    Fat-trees and the hypercube are checked at *half saturation*.  The
    torus runs at 10% of saturation: wormhole rings deadlock without
    virtual channels (Dally & Seitz 1987), which the simulators do not
    model — the same restriction the other-networks experiment applies.
    """

    @pytest.mark.parametrize(
        "topology,fraction",
        [
            ("bft", 0.5),
            ("generalized-fattree", 0.5),
            ("hypercube", 0.5),
            ("kary-ncube", 0.1),
        ],
    )
    def test_half_saturation_crosscheck(self, topology, fraction):
        probe = run(family_scenario(topology, backend="batch", sweep_points=0))
        sat = probe.metrics["saturation"]["flit_load"]
        scenario = dataclasses.replace(
            family_scenario(topology, backend="simulate", sweep_points=0),
            flit_load=fraction * sat,
            replications=1,
            warmup_cycles=2_000.0,
            measure_cycles=8_000.0,
            seed=7,
        )
        result = run(scenario)
        point = result.metrics["point"]
        assert point["stable"] is True
        assert point["model_prediction"] == pytest.approx(
            point["latency"], rel=0.10
        )
