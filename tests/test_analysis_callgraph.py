"""Unit suite for the project call-graph builder.

Each fixture is a tiny package written to ``tmp_path`` and fed to
:func:`build_callgraph`, pinning the resolution rules the concurrency
analyzer depends on: import aliases (including package ``__init__``
re-exports), method resolution through inferred attribute types and
base classes, decorator-wrapped functions, thread hand-off ("spawn")
edges, and — just as load-bearing — conservatism on dynamic calls the
graph cannot resolve.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.callgraph import build_callgraph


def make_pkg(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write a package named ``pkg`` under ``tmp_path`` and return its root."""
    root = tmp_path / "pkg"
    root.mkdir()
    if "__init__.py" not in files:
        (root / "__init__.py").write_text("")
    for rel, src in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    return root


def callee_names(graph, caller: str, kinds: tuple[str, ...] = ("call",)) -> list[str]:
    return sorted({s.callee for s in graph.callees(caller, kinds=kinds)})


UTIL = """
    def helper():
        return 1
    """


class TestImportResolution:
    def test_module_alias_import(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "util.py": UTIL,
                "main.py": """
                    import pkg.util as u

                    def caller():
                        return u.helper()
                    """,
            },
        )
        graph = build_callgraph([root])
        assert callee_names(graph, "pkg.main.caller") == ["pkg.util.helper"]

    def test_from_import_alias(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "util.py": UTIL,
                "main.py": """
                    from pkg.util import helper as h

                    def caller():
                        return h()
                    """,
            },
        )
        graph = build_callgraph([root])
        assert callee_names(graph, "pkg.main.caller") == ["pkg.util.helper"]

    def test_package_init_reexport(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "__init__.py": "from .util import helper\n",
                "util.py": UTIL,
                "main.py": """
                    from pkg import helper

                    def caller():
                        return helper()
                    """,
            },
        )
        graph = build_callgraph([root])
        assert callee_names(graph, "pkg.main.caller") == ["pkg.util.helper"]


class TestMethodResolution:
    def test_self_method_call(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    class Runner:
                        def run(self):
                            return self.step()

                        def step(self):
                            return 1
                    """,
            },
        )
        graph = build_callgraph([root])
        assert callee_names(graph, "pkg.mod.Runner.run") == ["pkg.mod.Runner.step"]

    def test_attribute_type_inference(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    class Cache:
                        def get(self, key):
                            return key

                    class Service:
                        def __init__(self):
                            self.cache = Cache()

                        def lookup(self, key):
                            return self.cache.get(key)
                    """,
            },
        )
        graph = build_callgraph([root])
        assert callee_names(graph, "pkg.mod.Service.lookup") == ["pkg.mod.Cache.get"]

    def test_inherited_method_resolution(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    class Base:
                        def ping(self):
                            return 1

                    class Child(Base):
                        def go(self):
                            return self.ping()
                    """,
            },
        )
        graph = build_callgraph([root])
        assert callee_names(graph, "pkg.mod.Child.go") == ["pkg.mod.Base.ping"]

    def test_constructor_result_method_call(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    class Runner:
                        def run(self):
                            return 1

                    def drive():
                        return Runner().run()
                    """,
            },
        )
        graph = build_callgraph([root])
        assert "pkg.mod.Runner.run" in callee_names(graph, "pkg.mod.drive")


class TestDecoratorsAndConservatism:
    def test_decorated_function_still_resolves(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    import functools

                    def logged(fn):
                        @functools.wraps(fn)
                        def inner(*a, **k):
                            return fn(*a, **k)
                        return inner

                    @logged
                    def helper():
                        return 1

                    def caller():
                        return helper()
                    """,
            },
        )
        graph = build_callgraph([root])
        assert "pkg.mod.helper" in callee_names(graph, "pkg.mod.caller")

    def test_dynamic_call_not_fabricated(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    def helper():
                        return 1

                    TABLE = {"h": helper}

                    def caller(key):
                        fn = TABLE[key]
                        return fn()
                    """,
            },
        )
        graph = build_callgraph([root])
        # `fn` came from a subscript the graph cannot see through: no
        # edge may be invented, and the miss is recorded as unresolved.
        assert callee_names(graph, "pkg.mod.caller") == []
        assert "pkg.mod.caller" in graph.unresolved

    def test_shadowed_import_not_resolved(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "util.py": UTIL,
                "main.py": """
                    from pkg.util import helper

                    def caller(helper):
                        return helper()
                    """,
            },
        )
        graph = build_callgraph([root])
        # The parameter shadows the import; resolving through it would
        # attribute arbitrary callables to pkg.util.helper.
        assert callee_names(graph, "pkg.main.caller") == []


class TestSpawnEdges:
    def test_executor_submit_is_spawn(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    from concurrent.futures import ThreadPoolExecutor

                    def worker(n):
                        return n

                    def launch():
                        with ThreadPoolExecutor() as pool:
                            pool.submit(worker, 1)
                    """,
            },
        )
        graph = build_callgraph([root])
        assert graph.spawn_targets() == {"pkg.mod.worker"}
        # spawn edges never count as plain calls
        assert callee_names(graph, "pkg.mod.launch", kinds=("call",)) == []

    def test_thread_target_and_partial(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    import functools
                    import threading
                    from concurrent.futures import ThreadPoolExecutor

                    def worker_a():
                        return 1

                    def worker_b(n):
                        return n

                    def launch():
                        threading.Thread(target=worker_a).start()
                        pool = ThreadPoolExecutor()
                        pool.submit(functools.partial(worker_b, 2))
                    """,
            },
        )
        graph = build_callgraph([root])
        assert graph.spawn_targets() == {"pkg.mod.worker_a", "pkg.mod.worker_b"}

    def test_async_handoffs_are_spawns(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    import asyncio

                    def worker():
                        return 1

                    async def via_to_thread():
                        return await asyncio.to_thread(worker)

                    async def via_executor():
                        loop = asyncio.get_running_loop()
                        return await loop.run_in_executor(None, worker)
                    """,
            },
        )
        graph = build_callgraph([root])
        assert graph.spawn_targets() == {"pkg.mod.worker"}

    def test_process_pool_submit_is_not_a_thread_spawn(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    def worker():
                        return 1

                    def launch():
                        pool = ProcessPoolExecutor()
                        pool.submit(worker)
                    """,
            },
        )
        graph = build_callgraph([root])
        # A process pool gives the child its own interpreter: no shared
        # memory, so no thread-race surface.
        assert graph.spawn_targets() == set()

    def test_reachable_closure_spans_spawned_work(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "mod.py": """
                    from concurrent.futures import ThreadPoolExecutor

                    def deep():
                        return 1

                    def worker():
                        return deep()

                    def launch():
                        pool = ThreadPoolExecutor()
                        pool.submit(worker)
                    """,
            },
        )
        graph = build_callgraph([root])
        pool = graph.reachable(graph.spawn_targets())
        assert {"pkg.mod.worker", "pkg.mod.deep"} <= pool
        assert "pkg.mod.launch" not in pool
