"""Tests for the prior-art baseline models (Dally, Draper-Ghosh, naive BFT)."""

from __future__ import annotations

import math

import pytest

from repro import (
    ButterflyFatTreeModel,
    ConfigurationError,
    Hypercube,
    KaryNCube,
    SimConfig,
    Workload,
    simulate,
)
from repro.baselines import (
    DallyKaryNCubeModel,
    DraperGhoshHypercubeModel,
    naive_bft_model,
)
from repro.topology.properties import kary_ncube_average_distance


class TestDally:
    def test_zero_load_closed_form(self):
        m = DallyKaryNCubeModel(8, 2)
        assert m.latency(Workload(32, 0.0)) == pytest.approx(
            32 + kary_ncube_average_distance(8, 2) - 1
        )

    def test_channel_rate(self):
        m = DallyKaryNCubeModel(8, 3)
        assert m.channel_rate(0.01) == pytest.approx(0.01 * 3.5)

    def test_monotone_in_load(self):
        m = DallyKaryNCubeModel(8, 2)
        lats = [m.latency_at_flit_load(x, 32) for x in (0.01, 0.05, 0.1, 0.2)]
        finite = [x for x in lats if math.isfinite(x)]
        assert finite == sorted(finite)

    def test_saturation_flit_load_closed_form(self):
        m = DallyKaryNCubeModel(8, 2)
        assert m.saturation_flit_load(32) == pytest.approx(2 / 7)
        # just below is stable, just above is not
        assert m.is_stable(Workload.from_flit_load(0.95 * 2 / 7, 32))
        assert not m.is_stable(Workload.from_flit_load(1.05 * 2 / 7, 32))

    def test_latency_inf_past_saturation(self):
        m = DallyKaryNCubeModel(4, 2)
        assert math.isinf(m.latency_at_flit_load(0.9, 32))

    def test_against_simulation_at_low_load(self, torus8x2):
        """Low load only: wormhole tori deadlock without virtual channels,
        which our simulators intentionally do not model."""
        m = DallyKaryNCubeModel(8, 2)
        for load in (0.005, 0.015):
            wl = Workload.from_flit_load(load, 32)
            res = simulate(
                torus8x2,
                wl,
                SimConfig(warmup_cycles=1000, measure_cycles=6000, seed=3),
            )
            assert res.censored_tagged == 0
            # Dally is a coarse model: demand ballpark agreement (25%).
            assert m.latency(wl) == pytest.approx(res.latency_mean, rel=0.25)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            DallyKaryNCubeModel(1, 2)
        with pytest.raises(ConfigurationError):
            DallyKaryNCubeModel(4, 0)

    def test_describe(self):
        assert "k=8" in DallyKaryNCubeModel(8, 2).describe()


class TestDraperGhosh:
    def test_zero_load_matches_general(self):
        wl = Workload(16, 0.0)
        dg = DraperGhoshHypercubeModel(5)
        gen = DraperGhoshHypercubeModel(5, corrected=True)
        assert dg.latency(wl) == pytest.approx(gen.latency(wl))

    def test_uncorrected_overestimates(self):
        # Without the blocking correction every hop charges the full queue
        # wait, so the baseline's latency must exceed the corrected model's.
        wl = Workload.from_flit_load(0.2, 32)
        dg = DraperGhoshHypercubeModel(6).latency(wl)
        gen = DraperGhoshHypercubeModel(6, corrected=True).latency(wl)
        assert dg > gen

    def test_corrected_tracks_simulation(self, cube6):
        wl = Workload.from_flit_load(0.2, 32)
        res = simulate(
            cube6, wl, SimConfig(warmup_cycles=1500, measure_cycles=8000, seed=4)
        )
        gen = DraperGhoshHypercubeModel(6, corrected=True)
        assert gen.latency(wl) == pytest.approx(res.latency_mean, rel=0.08)

    def test_correction_improves_accuracy(self, cube6):
        """The paper's blocking correction must reduce the error against
        simulation on the hypercube — the quantitative version of the
        abstract's "can also be applied to other networks"."""
        wl = Workload.from_flit_load(0.25, 32)
        res = simulate(
            cube6, wl, SimConfig(warmup_cycles=1500, measure_cycles=8000, seed=5)
        )
        err_base = abs(DraperGhoshHypercubeModel(6).latency(wl) - res.latency_mean)
        err_gen = abs(
            DraperGhoshHypercubeModel(6, corrected=True).latency(wl) - res.latency_mean
        )
        assert err_gen < err_base

    def test_stability_predicate(self):
        m = DraperGhoshHypercubeModel(5)
        assert m.is_stable(Workload.from_flit_load(0.05, 16))
        assert not m.is_stable(Workload.from_flit_load(5.0, 16))

    def test_rejects_bad_dimension(self):
        with pytest.raises(ConfigurationError):
            DraperGhoshHypercubeModel(0)

    def test_describe(self):
        assert "corrected=False" in DraperGhoshHypercubeModel(4).describe()


class TestNaiveBft:
    def test_naive_is_pessimistic(self):
        wl = Workload.from_flit_load(0.03, 32)
        naive = naive_bft_model(256).latency(wl)
        paper = ButterflyFatTreeModel(256).latency(wl)
        assert naive > paper

    def test_naive_variant_flags(self):
        m = naive_bft_model(64)
        assert not m.variant.multiserver_up
        assert not m.variant.blocking_correction

    def test_naive_zero_load_agrees(self):
        m = naive_bft_model(64)
        assert m.latency(Workload(32, 0.0)) == pytest.approx(m.zero_load_latency(32))
