"""True/false-positive fixtures for the concurrency rules (REP201-204).

Every rule gets at least one fixture that must fire (TP) and at least
one that must stay silent (FP): the to_thread/run_in_executor hand-off,
the lock-guarded shared global, and same-line pragma suppression are
exactly the idioms the ``src/repro`` sweep relies on staying quiet.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.concurrency import analyze_concurrency


def make_pkg(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "pkg"
    root.mkdir(parents=True)
    (root / "__init__.py").write_text("")
    for rel, src in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    return root


def check(tmp_path, source: str, rules=None):
    root = make_pkg(tmp_path, {"mod.py": source})
    return analyze_concurrency([root], rules=rules)


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestREP201BlockingInAsync:
    def test_direct_blocking_call_flagged(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import time

            async def handler():
                time.sleep(0.1)
            """,
        )
        assert rules_of(fs) == ["REP201"]
        assert "time.sleep" in fs[0].message

    def test_transitive_blocking_flagged_with_witness(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import time

            def slow():
                time.sleep(0.1)

            async def handler():
                slow()
            """,
        )
        assert rules_of(fs) == ["REP201"]
        assert "slow" in fs[0].message

    def test_to_thread_handoff_is_clean(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import asyncio
            import time

            def slow():
                time.sleep(0.1)

            async def handler():
                await asyncio.to_thread(slow)
            """,
        )
        assert fs == []

    def test_run_in_executor_handoff_is_clean(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import asyncio
            import time

            def slow():
                time.sleep(0.1)

            async def handler():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, slow)
            """,
        )
        assert fs == []

    def test_pragma_suppresses(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import time

            async def handler():
                time.sleep(0.1)  # lint: allow-blocking-async
            """,
        )
        assert fs == []


REP202_CONTENDED = """
    from concurrent.futures import ThreadPoolExecutor

    COUNTS = {}

    def worker(n):
        COUNTS[n] = 1

    def main_path():
        COUNTS["main"] = 2

    def launch():
        pool = ThreadPoolExecutor()
        pool.submit(worker, 1)
    """


class TestREP202SharedGlobalWrites:
    def test_contended_unguarded_writes_flagged(self, tmp_path):
        fs = check(tmp_path, REP202_CONTENDED)
        assert rules_of(fs) == ["REP202"]
        assert len(fs) == 2  # one finding per unguarded write site
        assert all("COUNTS" in f.message for f in fs)

    def test_lock_guarded_writes_are_clean(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import threading
            from concurrent.futures import ThreadPoolExecutor

            COUNTS = {}
            LOCK = threading.Lock()

            def worker(n):
                with LOCK:
                    COUNTS[n] = 1

            def main_path():
                with LOCK:
                    COUNTS["main"] = 2

            def launch():
                pool = ThreadPoolExecutor()
                pool.submit(worker, 1)
            """,
        )
        assert fs == []

    def test_pool_only_writer_is_clean(self, tmp_path):
        # Only pool code writes: the pool serializes nothing, but there
        # is no main-path contender, so REP202 stays quiet.
        fs = check(
            tmp_path,
            """
            from concurrent.futures import ThreadPoolExecutor

            COUNTS = {}

            def worker(n):
                COUNTS[n] = 1

            def launch():
                pool = ThreadPoolExecutor()
                pool.submit(worker, 1)
            """,
        )
        assert fs == []

    def test_pragma_suppresses(self, tmp_path):
        fs = check(
            tmp_path,
            """
            from concurrent.futures import ThreadPoolExecutor

            COUNTS = {}

            def worker(n):
                COUNTS[n] = 1  # lint: allow-shared-state

            def main_path():
                COUNTS["main"] = 2  # lint: allow-shared-state

            def launch():
                pool = ThreadPoolExecutor()
                pool.submit(worker, 1)
            """,
        )
        assert fs == []

    def test_method_mutation_of_global_instance_flagged(self, tmp_path):
        # The shape of the metrics race this PR fixed: a module-global
        # registry whose method mutates self, called from pool and main.
        fs = check(
            tmp_path,
            """
            from concurrent.futures import ThreadPoolExecutor

            class Registry:
                def __init__(self):
                    self.n = 0

                def add(self):
                    self.n = self.n + 1

            REG = Registry()

            def worker():
                REG.add()

            def main_path():
                REG.add()

            def launch():
                pool = ThreadPoolExecutor()
                pool.submit(worker)
            """,
        )
        assert rules_of(fs) == ["REP202"]
        assert len(fs) == 2

    def test_internally_locked_method_is_clean(self, tmp_path):
        # ...and the fix: the method guards its own mutation, so every
        # call site inherits the guard.
        fs = check(
            tmp_path,
            """
            import threading
            from concurrent.futures import ThreadPoolExecutor

            class Registry:
                def __init__(self):
                    self.n = 0
                    self._lock = threading.Lock()

                def add(self):
                    with self._lock:
                        self.n = self.n + 1

            REG = Registry()

            def worker():
                REG.add()

            def main_path():
                REG.add()

            def launch():
                pool = ThreadPoolExecutor()
                pool.submit(worker)
            """,
        )
        assert fs == []


class TestREP203AwaitUnderSyncLock:
    def test_await_inside_sync_lock_flagged(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import threading

            LOCK = threading.Lock()

            async def other():
                return 1

            async def handler():
                with LOCK:
                    await other()
            """,
        )
        assert rules_of(fs) == ["REP203"]

    def test_async_lock_is_clean(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import asyncio

            LOCK = asyncio.Lock()

            async def other():
                return 1

            async def handler():
                async with LOCK:
                    await other()
            """,
        )
        assert fs == []

    def test_non_lock_context_is_clean(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import contextlib

            @contextlib.contextmanager
            def tracker():
                yield

            async def other():
                return 1

            async def handler():
                with tracker():
                    await other()
            """,
        )
        assert fs == []

    def test_pragma_suppresses(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import threading

            LOCK = threading.Lock()

            async def other():
                return 1

            async def handler():
                with LOCK:
                    await other()  # lint: allow-await-in-lock
            """,
        )
        assert fs == []


class TestREP204DroppedCoroutine:
    def test_bare_coroutine_call_flagged(self, tmp_path):
        fs = check(
            tmp_path,
            """
            async def job():
                return 1

            def kick():
                job()
            """,
        )
        assert rules_of(fs) == ["REP204"]
        assert "job" in fs[0].message

    def test_bare_self_coroutine_method_flagged(self, tmp_path):
        fs = check(
            tmp_path,
            """
            class Service:
                async def job(self):
                    return 1

                def kick(self):
                    self.job()
            """,
        )
        assert rules_of(fs) == ["REP204"]

    def test_awaited_coroutine_is_clean(self, tmp_path):
        fs = check(
            tmp_path,
            """
            async def job():
                return 1

            async def kick():
                await job()
            """,
        )
        assert fs == []

    def test_create_task_is_clean(self, tmp_path):
        fs = check(
            tmp_path,
            """
            import asyncio

            async def job():
                return 1

            async def kick():
                asyncio.create_task(job())
            """,
        )
        assert fs == []

    def test_pragma_suppresses(self, tmp_path):
        fs = check(
            tmp_path,
            """
            async def job():
                return 1

            def kick():
                job()  # lint: allow-bare-coroutine
            """,
        )
        assert fs == []


class TestRuleSelection:
    def test_rules_filter_restricts_output(self, tmp_path):
        fs = check(tmp_path / "a", REP202_CONTENDED, rules=["REP201"])
        assert fs == []
        fs = check(tmp_path / "b", REP202_CONTENDED, rules=["REP202"])
        assert rules_of(fs) == ["REP202"]

    def test_findings_carry_path_and_line(self, tmp_path):
        fs = check(tmp_path, REP202_CONTENDED)
        assert all(f.path and f.path.endswith("mod.py") for f in fs)
        assert all(isinstance(f.line, int) and f.line > 0 for f in fs)
