"""Tests for the per-channel service-time audit (SVC experiment)."""

from __future__ import annotations

import math

import pytest

from repro.experiments import ExperimentMode, run_service_times

TINY = ExperimentMode(full=False)


class TestServiceTimeAudit:
    def test_small_instance_matches(self):
        res = run_service_times(
            num_processors=64, message_flits=16, experiment_mode=TINY
        )
        assert len(res.rows) == 6  # 3 levels x 2 directions
        for row in res.rows:
            assert abs(row.rate_err) < 0.06
            assert abs(row.service_err) < 0.06

    def test_ejection_channel_is_exact(self):
        res = run_service_times(
            num_processors=64, message_flits=16, experiment_mode=TINY
        )
        eject = next(r for r in res.rows if r.channel == "<1,0>")
        # Eq. 16: deterministic service, one flit per cycle at the sink.
        assert eject.sim_service == 16.0
        assert eject.model_service == 16.0

    def test_down_services_increase_with_level(self):
        # Eqs. 18: each level adds a non-negative blocking charge.
        res = run_service_times(
            num_processors=64, message_flits=16, experiment_mode=TINY
        )
        downs = [r for r in res.rows if r.channel in ("<1,0>", "<2,1>", "<3,2>")]
        model = [r.model_service for r in downs]
        sim = [r.sim_service for r in downs]
        assert model == sorted(model)
        assert sim == sorted(sim)

    def test_render_and_worst_error(self):
        res = run_service_times(
            num_processors=16, message_flits=16, experiment_mode=TINY
        )
        assert "x_bar" in res.render()
        assert math.isfinite(res.worst_service_error())

    def test_explicit_load(self):
        res = run_service_times(
            num_processors=16,
            message_flits=16,
            flit_load=0.05,
            experiment_mode=TINY,
        )
        assert res.flit_load == pytest.approx(0.05)
