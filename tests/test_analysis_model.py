"""Pre-solve analyzer tests: conservation matrix, corrupted flows, CLI wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.findings import ERROR, Finding
from repro.analysis.model import (
    EXPECTED_ACYCLIC,
    analyze_scenario,
    check_flow_conservation,
    scenario_flows,
)
from repro.cli import main
from repro.core.generic_model import ChannelGraphModel, Stage, Transition
from repro.runs import Scenario


def scenario_for(topology: str, **kw) -> Scenario:
    shapes = {
        "bft": dict(num_processors=16),
        "generalized-fattree": dict(
            num_processors=8, children=2, parents=2, levels=3
        ),
        "hypercube": dict(num_processors=16),
        "kary-ncube": dict(num_processors=9, radix=3),
    }
    params = {**shapes[topology], **kw}
    return Scenario(topology=topology, **params)


# The conservation matrix: every family in its nominal shape, the
# pattern-aware families across patterns, and a faulted butterfly.
MATRIX = [
    scenario_for("bft"),
    scenario_for("bft", pattern="transpose"),
    scenario_for("bft", pattern="bit-reversal"),
    scenario_for("bft", pattern="tornado"),
    scenario_for("bft", pattern="hotspot", pattern_params={"hotspot_fraction": 0.2}),
    scenario_for("bft", pattern="permutation", pattern_params={"permutation_seed": 7}),
    scenario_for("bft", pattern="quad-local"),
    scenario_for("generalized-fattree"),
    scenario_for("hypercube"),
    scenario_for("hypercube", pattern="bit-complement"),
    scenario_for("hypercube", pattern="transpose"),
    scenario_for("kary-ncube"),
    scenario_for("bft", faults={"dead_links": ["up:0:1"]}),
    scenario_for("bft", faults={"dead_links": ["up:1:0"], "dead_switches": []}),
]


class TestConservationMatrix:
    @pytest.mark.parametrize(
        "scenario", MATRIX, ids=[s.describe() for s in MATRIX]
    )
    def test_valid_scenarios_pass_all_checks(self, scenario):
        report = analyze_scenario(scenario)
        assert report.ok, report.render()
        assert report.checks == ("REP101", "REP102", "REP103", "REP104")
        assert report.findings == ()

    def test_corrupted_flow_pinpoints_the_channel(self):
        from repro.faults.spec import link_ref

        scenario = scenario_for("bft")
        flows = scenario_flows(scenario)
        victim = 7
        flows.link_rate[victim] += 1e-3
        findings = check_flow_conservation(flows)
        assert findings, "corruption must be detected"
        ref = link_ref(flows.topology, victim)
        assert findings[0].rule == "REP101"
        assert findings[0].channel == ref
        assert f"link {victim}" in findings[0].message

    def test_within_tolerance_perturbation_passes(self):
        flows = scenario_flows(scenario_for("bft"))
        flows.link_rate[7] += 1e-12
        assert check_flow_conservation(flows) == []

    def test_forwarding_deficit_detected(self):
        flows = scenario_flows(scenario_for("bft"))
        # Remove some forwarded mass from a non-ejection link: the link
        # then sinks flow it is supposed to pass on.
        for e, targets in enumerate(flows.edge_flow):
            if targets:
                victim, target = e, next(iter(targets))
                break
        flows.edge_flow[victim][target] *= 0.5
        findings = check_flow_conservation(flows)
        assert any(f.rule == "REP101" for f in findings)

    def test_faulted_flows_conserve(self):
        flows = scenario_flows(scenario_for("bft", faults={"dead_links": ["up:0:1"]}))
        assert check_flow_conservation(flows) == []

    def test_partitioned_network_reports_rep102(self):
        # Killing every injection link of a PE quadrant's switch row can
        # partition the network; easier: kill all up links out of all PEs
        # except one is a partition by construction.  Use dead switches on
        # the only level-1 switch column of a 16-PE machine via random
        # failures is fragile — instead kill every injection link but one.
        dead = [f"up:0:{i}" for i in range(1, 16)]
        report = analyze_scenario(scenario_for("bft", faults={"dead_links": dead}))
        assert not report.ok
        assert any(f.rule == "REP102" for f in report.findings)


class TestModelCheck:
    def test_saturated_load_reports_rep104(self):
        report = analyze_scenario(scenario_for("bft", flit_load=0.9))
        assert not report.ok
        rules = {f.rule for f in report.findings}
        assert rules == {"REP104"}

    def test_expected_acyclic_families(self):
        assert EXPECTED_ACYCLIC == {
            "bft": True,
            "generalized-fattree": True,
            "hypercube": True,
            "kary-ncube": False,
        }

    def test_cyclic_graph_rejected_when_acyclic_expected(self):
        loop = ChannelGraphModel(
            [
                Stage("a", rate_per_server=0.001, transitions=(Transition("b", 1.0),)),
                Stage("b", rate_per_server=0.001, transitions=(Transition("a", 1.0),)),
            ],
            message_flits=16,
            entry="a",
            average_distance=2.0,
        )
        assert not loop.is_acyclic
        findings = loop.check(expect_acyclic=True)
        assert any(f.rule == "REP102" for f in findings)
        # The same structure is fine for the cyclic solver.
        assert loop.check(expect_acyclic=False) == []

    def test_acyclic_graph_passes(self):
        graph = ChannelGraphModel(
            [
                Stage("inj", rate_per_server=0.001, transitions=(Transition("ej", 1.0),)),
                Stage("ej", rate_per_server=0.001, transitions=()),
            ],
            message_flits=16,
            entry="inj",
            average_distance=2.0,
        )
        assert graph.check(expect_acyclic=True) == []

    def test_stability_precondition(self):
        graph = ChannelGraphModel(
            [Stage("inj", rate_per_server=0.5, transitions=())],
            message_flits=16,
            entry="inj",
            average_distance=1.0,
        )
        findings = graph.check(expect_acyclic=True)
        assert any(f.rule == "REP104" for f in findings)
        # At a scale far below saturation the same graph passes.
        assert graph.check(expect_acyclic=True, load_scale=0.01) == []

    def test_report_render_and_json(self):
        report = analyze_scenario(scenario_for("bft"))
        assert "ok" in report.render()
        data = report.to_json()
        assert data["ok"] is True
        assert data["findings"] == []
        assert data["checks"] == ["REP101", "REP102", "REP103", "REP104"]


class TestCli:
    def test_check_ok_exit_zero(self, capsys):
        assert main(["check", "-n", "16", "-f", "16", "-l", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "pre-solve checks" in out
        assert "ok" in out

    def test_check_all_families(self, capsys):
        for argv in (
            ["check", "-n", "16"],
            ["check", "--topology", "generalized-fattree", "-n", "8",
             "--children", "2", "--parents", "2"],
            ["check", "--topology", "hypercube", "-n", "16"],
            ["check", "--topology", "kary-ncube", "-n", "9", "--radix", "3"],
        ):
            assert main(argv + ["-f", "16", "-l", "0.03"]) == 0, argv

    def test_check_faulted(self, capsys):
        assert (
            main(["check", "-n", "16", "-f", "16", "-l", "0.03",
                  "--kill-links", "up:0:1"])
            == 0
        )

    def test_check_saturated_exit_two(self, capsys):
        assert main(["check", "-n", "16", "-f", "16", "-l", "0.9"]) == 2
        out = capsys.readouterr().out
        assert "REP104" in out

    def test_run_check_records_provenance(self, capsys):
        assert (
            main(["run", "-n", "16", "-f", "16", "-l", "0.03", "--points", "0",
                  "--check", "--json"])
            == 0
        )
        import json

        payload = json.loads(capsys.readouterr().out)
        checks = payload["provenance"]["pre_solve_checks"]
        assert checks["ok"] is True
        assert checks["findings"] == []

    def test_run_check_refuses_corrupted_stage_graph(self, capsys, monkeypatch):
        import repro.traffic.flows as flows_mod

        real = flows_mod.bft_channel_flows

        def corrupted(topology, spec):
            flows = real(topology, spec)
            flows.link_rate[7] += 1e-3
            return flows

        monkeypatch.setattr(flows_mod, "bft_channel_flows", corrupted)
        code = main(["run", "-n", "16", "-f", "16", "-l", "0.03", "--points", "0",
                     "--check"])
        assert code == 2
        err = capsys.readouterr().err
        assert "REP101" in err
        assert "down:0:3" in err  # the corrupted channel, by canonical ref

    def test_run_without_check_still_solves(self, capsys):
        assert (
            main(["run", "-n", "16", "-f", "16", "-l", "0.03", "--points", "0"]) == 0
        )


class TestMypyConfig:
    def test_config_committed(self):
        from pathlib import Path

        ini = Path(__file__).resolve().parent.parent / "mypy.ini"
        text = ini.read_text()
        assert "[mypy-repro.util.*]" in text
        assert "[mypy-repro.runs.*]" in text

    def test_strict_islands_clean(self):
        """Run mypy over the strict islands when it is installed."""
        import shutil
        import subprocess
        import sys
        from pathlib import Path

        if shutil.which("mypy") is None:
            pytest.skip("mypy not installed in this environment")
        root = Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", str(root / "mypy.ini")],
            cwd=root,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
