"""Tests for the scenario service: cache semantics, coalescing, HTTP."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.errors import SimulationError
from repro.obs.metrics import METRICS
from repro.runs import RunRegistry, Scenario, run
from repro.serve import ScenarioCache, ScenarioService


def tiny_scenario(**overrides) -> Scenario:
    defaults = dict(
        num_processors=16,
        message_flits=16,
        flit_load=0.04,
        sweep_points=4,
        seed=11,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def comparable(result) -> dict:
    """The record's deterministic content: everything but timestamps,
    identifiers derived from them, wall-clock timings and the telemetry
    block — the exact "byte-identical modulo timestamps/observability"
    contract a cache hit promises."""
    data = result.to_json()
    data.pop("run_id")
    data.pop("created_at")
    data.pop("timings")
    data["metrics"] = dict(data["metrics"])
    data["metrics"].pop("observability", None)
    return data


@pytest.fixture
def registry(tmp_path):
    return RunRegistry(tmp_path / "registry")


class TestScenarioCache:
    def test_miss_solves_and_persists(self, registry):
        cache = ScenarioCache(registry)
        sc = tiny_scenario()
        record, was_hit = cache.solve(sc)
        assert was_hit is False
        assert record.provenance["scenario_key"] == sc.key()
        assert registry.load(record.run_id) == record
        cache.close()

    def test_hit_returns_stored_record(self, registry):
        cache = ScenarioCache(registry)
        sc = tiny_scenario()
        first, _ = cache.solve(sc)
        second, was_hit = cache.solve(sc)
        assert was_hit is True
        assert second == first  # the stored record itself, not a re-solve
        cache.close()

    def test_label_does_not_split_the_cache(self, registry):
        cache = ScenarioCache(registry)
        first, _ = cache.solve(tiny_scenario(label="monday"))
        second, was_hit = cache.solve(tiny_scenario(label="tuesday"))
        assert was_hit is True
        assert second == first
        cache.close()

    def test_backend_and_faults_split_the_cache(self, registry):
        solved = []

        def solver(sc):
            solved.append(sc)
            return run(sc)

        cache = ScenarioCache(registry, solver=solver)
        cache.solve(tiny_scenario())
        cache.solve(tiny_scenario(backend="model"))
        cache.solve(tiny_scenario(faults={"dead_links": ["up:1:0"]}))
        assert len(solved) == 3
        cache.close()

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(),  # bft
            dict(topology="generalized-fattree", children=2, parents=2,
                 num_processors=8),
            dict(topology="hypercube"),
            dict(topology="kary-ncube", radix=3, num_processors=27),
            dict(faults={"dead_links": ["up:1:0"]}),  # degraded bft
        ],
        ids=["bft", "generalized-fattree", "hypercube", "kary-ncube", "faulted"],
    )
    def test_cached_answer_matches_fresh_solve(self, registry, overrides):
        """A served-from-cache record equals a brand-new solve of the same
        scenario in every deterministic field, across all four topology
        families and a degraded fabric."""
        sc = tiny_scenario(**overrides)
        cache = ScenarioCache(registry)
        cached, was_hit = cache.solve(sc)
        assert was_hit is False
        fresh = run(sc)
        assert comparable(cached) == comparable(fresh)
        again, was_hit = cache.solve(sc)
        assert was_hit is True
        assert comparable(again) == comparable(fresh)
        cache.close()


def run_async(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_solve(self, registry):
        """Eight concurrent requests for the same scenario: one solve."""
        sc = tiny_scenario()
        release = threading.Event()
        calls = []

        def gated_solver(scenario):
            calls.append(scenario)
            assert release.wait(timeout=30.0)
            return run(scenario)

        service = ScenarioService(registry, port=0, solver=gated_solver)

        async def go():
            tasks = [
                asyncio.create_task(service.solve_scenario(sc)) for _ in range(8)
            ]
            # Let every task reach its await; the first registers the
            # in-flight future, the other seven must attach to it.
            while len(calls) == 0:
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.05)
            release.set()
            results = await asyncio.gather(*tasks)
            await service.stop()
            return results

        results = run_async(go())
        assert len(calls) == 1
        hows = sorted(how for _, how in results)
        assert hows == ["coalesced"] * 7 + ["miss"]
        run_ids = {record.run_id for record, _ in results}
        assert len(run_ids) == 1
        counters = service.metrics.snapshot()["counters"]
        assert counters["serve.cache.misses"] == 1
        assert counters["serve.coalesced"] == 7
        assert service.metrics.snapshot()["gauges"]["serve.inflight"] == 0

    def test_exactly_one_backend_solve_for_eight_requests(self, registry):
        """Pin the coalescing guarantee on the backend's own counter: eight
        concurrent identical requests consume exactly as many ``solve.batch``
        evaluations as one direct ``run()``."""
        sc = tiny_scenario()
        with METRICS.collect() as baseline:
            run(sc)
        expected = baseline.data["counters"]["solve.batch"]
        assert expected >= 1

        service = ScenarioService(registry, port=0)

        async def go():
            results = await asyncio.gather(
                *(service.solve_scenario(sc) for _ in range(8))
            )
            await service.stop()
            return results

        with METRICS.collect() as telemetry:
            results = run_async(go())
        assert telemetry.data["counters"]["solve.batch"] == expected
        assert sorted(how for _, how in results).count("miss") == 1

    def test_failed_solve_is_not_cached_and_resets_inflight(self, registry):
        sc = tiny_scenario()
        attempts = []

        def flaky_solver(scenario):
            attempts.append(scenario)
            if len(attempts) == 1:
                raise SimulationError("transient backend failure")
            return run(scenario)

        service = ScenarioService(registry, port=0, solver=flaky_solver)

        async def go():
            with pytest.raises(SimulationError):
                await service.solve_scenario(sc)
            record, how = await service.solve_scenario(sc)
            await service.stop()
            return record, how

        record, how = run_async(go())
        assert how == "miss"  # the failure left no cache entry behind
        assert len(attempts) == 2
        assert registry.load(record.run_id) == record


async def http_request(service, method, path, body=None):
    """Raw HTTP/1.1 round trip against a started service."""
    reader, writer = await asyncio.open_connection(service.host, service.port)
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {service.host}\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    )
    writer.write(head.encode("ascii") + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("ascii").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_blob) if body_blob else None


class TestHTTP:
    def run_with_service(self, registry, scenario_fn):
        async def go():
            service = ScenarioService(registry, port=0)
            await service.start()
            try:
                return await scenario_fn(service)
            finally:
                await service.stop()

        return run_async(go())

    def test_solve_miss_then_hit(self, registry):
        sc = tiny_scenario()

        async def steps(service):
            first = await http_request(service, "POST", "/solve", sc.to_json())
            second = await http_request(service, "POST", "/solve", sc.to_json())
            stats = await http_request(service, "GET", "/stats")
            return first, second, stats

        first, second, stats = self.run_with_service(registry, steps)
        status, headers, record = first
        assert status == 200
        assert headers["x-repro-cache"] == "miss"
        assert record["provenance"]["scenario_key"] == sc.key()
        status, headers, cached = second
        assert status == 200
        assert headers["x-repro-cache"] == "hit"
        assert cached == record  # the identical stored record, byte for byte
        counters = stats[2]["counters"]
        assert counters["serve.requests"] == 3
        assert counters["serve.cache.hits"] == 1
        assert counters["serve.cache.misses"] == 1
        assert "serve/solve" in stats[2]["spans"]
        assert "serve/request" in stats[2]["spans"]

    def test_health(self, registry):
        async def steps(service):
            return await http_request(service, "GET", "/health")

        status, _, payload = self.run_with_service(registry, steps)
        assert status == 200
        assert payload["ok"] is True
        assert str(registry.path) in payload["registry"]

    def test_error_statuses(self, registry):
        async def steps(service):
            return (
                await http_request(service, "POST", "/solve", None),
                await http_request(
                    service, "POST", "/solve", {"bogus": 1, "topology": "bft"}
                ),
                await http_request(service, "GET", "/nowhere"),
                await http_request(service, "GET", "/solve"),
                await http_request(
                    service,
                    "POST",
                    "/solve",
                    tiny_scenario(
                        topology="hypercube",
                        num_processors=4,
                        faults={"dead_links": ["up:1:0"]},
                    ).to_json(),
                ),
            )

        empty, unknown_field, nowhere, get_solve, cut = self.run_with_service(
            registry, steps
        )
        assert empty[0] == 400
        assert unknown_field[0] == 400
        assert "bogus" in unknown_field[2]["error"]
        assert nowhere[0] == 404
        assert get_solve[0] == 405
        assert cut[0] == 422
        assert "PartitionedNetworkError" in cut[2]["error"]

    def test_unanswerable_scenario_is_not_cached(self, registry):
        cut = tiny_scenario(
            topology="hypercube", num_processors=4, faults={"dead_links": ["up:1:0"]}
        )

        async def steps(service):
            await http_request(service, "POST", "/solve", cut.to_json())
            await http_request(service, "POST", "/solve", cut.to_json())
            return service.metrics.snapshot()["counters"]

        counters = self.run_with_service(registry, steps)
        assert counters["serve.cache.misses"] == 2
        assert counters.get("serve.cache.hits", 0) == 0
        assert len(registry.query()) == 0
