"""Smoke tests for the extension experiments (GFT, BUF) at tiny scale."""

from __future__ import annotations

import math

import pytest

from repro.experiments import ExperimentMode, run_buffering, run_generalized

TINY = ExperimentMode(full=False)


class TestGeneralizedExperiment:
    def test_small_family(self):
        res = run_generalized(
            family=((4, 2, 2), (4, 3, 2)),
            message_flits=16,
            load_fractions=(0.4,),
            experiment_mode=TINY,
        )
        assert len(res.rows) == 2
        for row in res.rows:
            assert math.isfinite(row.sim_latency)
            assert abs(row.rel_err) < 0.08
        assert "M/G/p" in res.render()

    def test_redundancy_buys_saturation(self):
        res = run_generalized(
            family=((4, 2, 2), (4, 3, 2), (4, 4, 2)),
            message_flits=16,
            load_fractions=(0.4,),
            experiment_mode=TINY,
        )
        sats = [r.model_saturation for r in res.rows]
        assert sats == sorted(sats)

    def test_row_shape(self):
        res = run_generalized(
            family=((2, 2, 2),), message_flits=16, load_fractions=(0.3,),
            experiment_mode=TINY,
        )
        row = res.rows[0]
        assert row.children == 2 and row.parents == 2
        assert row.flit_load == pytest.approx(0.3 * row.model_saturation)


class TestBufferingExperiment:
    def test_small_instance(self):
        res = run_buffering(
            num_processors=16,
            message_flits=16,
            depths=(1, 2),
            experiment_mode=TINY,
        )
        assert len(res.rows) == 4
        for row in res.rows:
            assert row.buffered[1] > row.buffered[2]
            assert row.buffered[2] == pytest.approx(row.event_sim_latency, rel=0.08)
        assert "Buffering sensitivity" in res.render()

    def test_torus_rows(self):
        res = run_buffering(
            num_processors=16,
            message_flits=16,
            depths=(2,),
            experiment_mode=TINY,
        )
        for trow in res.torus_rows:
            assert trow.vc_censored == 0
            assert math.isfinite(trow.vc_latency)
