"""Tests for the cycle-driven flit-level simulator and event/flit agreement."""

from __future__ import annotations

import pytest

from repro import (
    ButterflyFatTree,
    SimConfig,
    TraceTraffic,
    Workload,
    simulate,
    simulate_flit_level,
)
from repro.experiments.crosscheck import poisson_trace


def _trace_cfg(measure=200.0, seed=0):
    return SimConfig(warmup_cycles=0, measure_cycles=measure, seed=seed, drain_factor=100)


class TestFlitSingleMessage:
    @pytest.mark.parametrize("src,dst", [(0, 1), (0, 5), (0, 63), (17, 42)])
    def test_latency_is_f_plus_d_minus_one(self, bft64, src, dst):
        flits = 16
        res = simulate_flit_level(
            bft64,
            Workload(flits, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, src, dst)]),
        )
        assert res.tagged_delivered == 1
        assert res.latency_mean == flits + bft64.path_length(src, dst) - 1

    def test_serialized_same_source(self, bft64):
        res = simulate_flit_level(
            bft64,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 0, 63), (0.0, 0, 62)]),
        )
        assert res.latency_min == pytest.approx(21.0)
        assert res.latency_max == pytest.approx(37.0)

    def test_shared_ejection_contention(self, bft64):
        res = simulate_flit_level(
            bft64,
            Workload(16, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 1, 0), (0.0, 2, 0)]),
        )
        assert sorted([res.latency_min, res.latency_max]) == [17.0, 33.0]

    def test_short_worm_exactness(self, bft64):
        """Unlike the event simulator, the rigid-train bookkeeping stays
        exact for worms shorter than their paths: a single 2-flit worm on a
        6-hop path completes in D + F - 1 cycles regardless."""
        res = simulate_flit_level(
            bft64,
            Workload(2, 0.0),
            _trace_cfg(),
            traffic=TraceTraffic([(0.0, 0, 63)]),
        )
        assert res.latency_mean == 2 + 6 - 1


class TestEventFlitAgreement:
    @pytest.mark.parametrize("n_procs", [16, 64])
    def test_zero_contention_trace_identical(self, n_procs):
        """Messages spaced far apart: both simulators must agree on every
        latency (no ties, no adaptive-timing differences)."""
        topo = ButterflyFatTree(n_procs)
        trace = [(float(200 * i), i % n_procs, (i * 7 + 3) % n_procs)
                 for i in range(20)]
        trace = [(t, s, d) for (t, s, d) in trace if s != d]
        wl = Workload(16, 0.0)
        cfg = _trace_cfg(measure=200.0 * 25)
        ra = simulate(topo, wl, cfg, traffic=TraceTraffic(trace))
        rb = simulate_flit_level(topo, wl, cfg, traffic=TraceTraffic(trace))
        assert ra.tagged_delivered == rb.tagged_delivered == len(trace)
        assert ra.latency_mean == rb.latency_mean
        assert ra.latency_min == rb.latency_min
        assert ra.latency_max == rb.latency_max

    @pytest.mark.parametrize("load", [0.02, 0.06])
    def test_contended_trace_statistical_agreement(self, bft64, load):
        wl = Workload.from_flit_load(load, 16)
        cfg = SimConfig(warmup_cycles=1000, measure_cycles=6000, seed=21)
        trace = poisson_trace(64, wl.injection_rate, cfg.cutoff_cycles, seed=5)
        ra = simulate(bft64, wl, cfg, traffic=trace)
        rb = simulate_flit_level(bft64, wl, cfg, traffic=trace)
        assert ra.tagged_delivered == rb.tagged_delivered
        assert ra.latency_mean == pytest.approx(rb.latency_mean, rel=0.03)

    def test_delivered_counts_always_match(self, bft16):
        wl = Workload.from_flit_load(0.1, 16)
        cfg = SimConfig(warmup_cycles=500, measure_cycles=4000, seed=22)
        trace = poisson_trace(16, wl.injection_rate, cfg.cutoff_cycles, seed=6)
        ra = simulate(bft16, wl, cfg, traffic=trace)
        rb = simulate_flit_level(bft16, wl, cfg, traffic=trace)
        # The two engines stop at slightly different instants (continuous vs
        # integer time), so the count of *background* arrivals may differ by
        # a couple; everything measured must match exactly.
        assert abs(ra.generated_total - rb.generated_total) <= 3
        assert ra.tagged_generated == rb.tagged_generated
        assert ra.tagged_delivered == rb.tagged_delivered

    def test_class_rates_agree(self, bft16):
        wl = Workload(16, 0.005)
        cfg = SimConfig(warmup_cycles=500, measure_cycles=8000, seed=23)
        trace = poisson_trace(16, wl.injection_rate, cfg.cutoff_cycles, seed=8)
        ra = simulate(bft16, wl, cfg, traffic=trace)
        rb = simulate_flit_level(bft16, wl, cfg, traffic=trace)
        for name, stats in ra.class_stats.items():
            assert rb.class_stats[name].acquisitions == pytest.approx(
                stats.acquisitions, rel=0.05, abs=5
            )


class TestFlitDeterminism:
    def test_same_seed_same_result(self, bft16):
        wl = Workload.from_flit_load(0.1, 16)
        cfg = SimConfig(warmup_cycles=500, measure_cycles=3000, seed=31)
        r1 = simulate_flit_level(bft16, wl, cfg)
        r2 = simulate_flit_level(bft16, wl, cfg)
        assert r1.latency_mean == r2.latency_mean

    def test_poisson_traffic_supported_directly(self, bft16):
        # Without an explicit trace the flit simulator floors the Poisson
        # arrival times itself.
        wl = Workload.from_flit_load(0.05, 16)
        cfg = SimConfig(warmup_cycles=500, measure_cycles=3000, seed=32)
        res = simulate_flit_level(bft16, wl, cfg)
        assert res.tagged_delivered > 0
        assert res.stable
