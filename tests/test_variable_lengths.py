"""Tests for the variable message-length extension (relaxing assumption 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ButterflyFatTree,
    ButterflyFatTreeModel,
    ConfigurationError,
    PoissonTraffic,
    SimConfig,
    TraceTraffic,
    Workload,
    simulate,
    simulate_buffered,
    simulate_flit_level,
)
from repro.simulation import bimodal_lengths
from repro.simulation.traffic import Arrival


class TestLengthSampler:
    def test_bimodal_two_point(self):
        sample = bimodal_lengths(8, 56, 0.5)
        rng = np.random.default_rng(0)
        values = {sample(rng) for _ in range(200)}
        assert values == {8, 56}

    def test_bimodal_fraction(self):
        sample = bimodal_lengths(8, 56, 0.75)
        rng = np.random.default_rng(1)
        draws = [sample(rng) for _ in range(4000)]
        assert np.mean([d == 8 for d in draws]) == pytest.approx(0.75, abs=0.03)

    def test_bimodal_validation(self):
        with pytest.raises(ConfigurationError):
            bimodal_lengths(0, 56, 0.5)
        with pytest.raises(ConfigurationError):
            bimodal_lengths(8, 56, 1.5)

    def test_traffic_carries_lengths(self):
        wl = Workload(32, 0.02)
        tr = PoissonTraffic(16, wl, seed=2, length_sampler=bimodal_lengths(8, 56, 0.5))
        arrivals = list(tr.arrivals(2000))
        assert arrivals
        assert {a.flits for a in arrivals} <= {8, 56}

    def test_traffic_without_sampler_has_no_lengths(self):
        tr = PoissonTraffic(16, Workload(32, 0.02), seed=3)
        assert all(a.flits is None for a in tr.arrivals(1000))


class TestEventSimVariableLengths:
    def test_single_short_and_long_messages(self, bft64):
        cfg = SimConfig(warmup_cycles=0, measure_cycles=500, seed=0, drain_factor=100)
        trace = TraceTraffic(
            [Arrival(0.0, 0, 63, 8), Arrival(200.0, 0, 63, 56)]
        )
        res = simulate(bft64, Workload(32, 0.0), cfg, traffic=trace)
        # Latencies are F_i + D - 1 individually.
        assert sorted([res.latency_min, res.latency_max]) == [8 + 5, 56 + 5]

    def test_throughput_uses_actual_lengths(self, bft64):
        wl = Workload(32, 0.002)  # nominal length 32
        cfg = SimConfig(warmup_cycles=1000, measure_cycles=8000, seed=4)
        traffic = PoissonTraffic(
            64, wl, seed=4, length_sampler=bimodal_lengths(8, 56, 0.5)
        )
        res = simulate(bft64, wl, cfg, traffic=traffic)
        assert res.censored_tagged == 0
        # mean length is (8+56)/2 = 32 -> flit rate ~ 0.002*32
        assert res.delivered_flit_rate == pytest.approx(0.064, rel=0.12)

    def test_bimodal_latency_exceeds_fixed_at_same_mean(self, bft64):
        """Higher service variability at equal mean load must not reduce
        delay: bimodal-length traffic waits at least as long as fixed-length
        traffic of the same mean length and rate."""
        lam = 0.004
        wl = Workload(32, lam)
        cfg = SimConfig(warmup_cycles=2000, measure_cycles=10000, seed=5)
        fixed = simulate(bft64, wl, cfg)
        traffic = PoissonTraffic(
            64, wl, seed=5, length_sampler=bimodal_lengths(8, 56, 0.5)
        )
        mixed = simulate(bft64, wl, cfg, traffic=traffic)
        # Compare mean latency normalized by mean serialization length.
        assert mixed.latency_mean > 0.95 * fixed.latency_mean

    def test_model_with_mean_length_brackets_bimodal_sim(self, bft64):
        """The fixed-length model evaluated at the mean length remains a
        usable (slightly optimistic) predictor for mildly bimodal traffic."""
        lam = 0.004
        wl = Workload(32, lam)
        cfg = SimConfig(warmup_cycles=2000, measure_cycles=10000, seed=6)
        traffic = PoissonTraffic(
            64, wl, seed=6, length_sampler=bimodal_lengths(24, 40, 0.5)
        )
        res = simulate(bft64, wl, cfg, traffic=traffic)
        model = ButterflyFatTreeModel(64).latency(wl)
        assert model == pytest.approx(res.latency_mean, rel=0.10)


class TestFixedLengthEngineGuards:
    def test_flit_sim_rejects_variable_lengths(self, bft16):
        cfg = SimConfig(warmup_cycles=0, measure_cycles=100, seed=0)
        trace = TraceTraffic([Arrival(0.0, 0, 5, 8)])
        with pytest.raises(ConfigurationError):
            simulate_flit_level(bft16, Workload(32, 0.0), cfg, traffic=trace)

    def test_buffered_sim_rejects_variable_lengths(self, bft16):
        cfg = SimConfig(warmup_cycles=0, measure_cycles=100, seed=0)
        trace = TraceTraffic([Arrival(0.0, 0, 5, 8)])
        with pytest.raises(ConfigurationError):
            simulate_buffered(bft16, Workload(32, 0.0), cfg, traffic=trace)

    def test_matching_length_is_accepted(self, bft16):
        cfg = SimConfig(warmup_cycles=0, measure_cycles=200, seed=0, drain_factor=50)
        trace = TraceTraffic([Arrival(0.0, 0, 5, 32)])
        res = simulate_flit_level(bft16, Workload(32, 0.0), cfg, traffic=trace)
        assert res.tagged_delivered == 1
