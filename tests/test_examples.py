"""Every example script must run end-to-end and produce its key output."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "Saturation throughput" in out
        assert "Model vs simulation" in out

    def test_capacity_planning(self):
        out = _run("capacity_planning.py")
        assert "Design-space sweep" in out
        assert "Largest feasible configuration" in out

    def test_saturation_study(self):
        out = _run("saturation_study.py")
        assert "Model saturation throughput" in out
        assert "Empirical check" in out

    def test_model_vs_simulation(self):
        out = _run("model_vs_simulation.py")
        assert "Model vs simulation, N=256" in out
        assert "legend" in out

    def test_general_networks(self):
        out = _run("general_networks.py")
        assert "hypercube" in out
        assert "Dally baseline" in out

    def test_traffic_patterns(self):
        out = _run("traffic_patterns.py")
        for pattern in ("uniform", "quad-local", "permutation", "hotspot"):
            assert pattern in out

    def test_generalized_fattrees(self):
        out = _run("generalized_fattrees.py")
        assert "M/G/p" in out
        assert "parents p" in out
