"""Tests for the hypercube and k-ary n-cube topologies (baseline substrates)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigurationError, Hypercube, KaryNCube
from repro.errors import RoutingError
from repro.topology import to_networkx
from repro.topology.properties import (
    average_distance_by_enumeration,
    hypercube_average_distance,
    kary_ncube_average_distance,
)


class TestHypercube:
    def test_counts(self):
        hc = Hypercube(4)
        assert hc.num_processors == 16
        assert hc.num_links == 16 * 4 + 32

    def test_rejects_bad_dimension(self):
        with pytest.raises(ConfigurationError):
            Hypercube(0)

    def test_links_flip_one_bit(self):
        hc = Hypercube(4)
        n = hc.num_processors
        for u in range(n):
            for k in range(4):
                e = u * 4 + k
                assert hc.link_src[e] == n + u
                assert hc.link_dst[e] == n + (u ^ (1 << k))

    def test_ecube_descending_dimension_order(self):
        hc = Hypercube(4)
        n = hc.num_processors
        # From router 0 to PE 0b1010: first hop must fix bit 3.
        opts = hc.route_options(n + 0, 0b1010)
        assert opts.next_nodes[0] == n + 0b1000

    def test_ecube_walk_delivers(self):
        hc = Hypercube(5)
        n = hc.num_processors
        for src, dst in [(0, 31), (7, 20), (12, 3)]:
            node = hc.injection_options(src).next_nodes[0]
            hops = 1
            while node != dst:
                opts = hc.route_options(node, dst)
                assert len(opts.links) == 1  # deterministic routing
                node = opts.next_nodes[0]
                hops += 1
            assert hops == hc.path_length(src, dst)

    def test_path_length(self):
        hc = Hypercube(5)
        assert hc.path_length(0, 0b10101) == 3 + 2
        assert hc.path_length(4, 4) == 0

    def test_eject_at_destination_router(self):
        hc = Hypercube(3)
        n = hc.num_processors
        opts = hc.route_options(n + 5, 5)
        assert opts.next_nodes[0] == 5

    def test_all_singleton_groups(self):
        hc = Hypercube(3)
        assert all(len(g) == 1 for g in hc.groups)

    def test_average_distance_closed_form(self):
        for d in (2, 3, 4):
            hc = Hypercube(d)
            assert hypercube_average_distance(d) == pytest.approx(
                average_distance_by_enumeration(hc)
            )

    def test_connected(self):
        assert nx.is_strongly_connected(to_networkx(Hypercube(3)))

    def test_route_rejects_bad_args(self):
        hc = Hypercube(3)
        with pytest.raises(RoutingError):
            hc.route_options(0, 1)  # PE node, not a router
        with pytest.raises(RoutingError):
            hc.injection_options(8)

    @given(d=st.integers(1, 7), seed=st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_property_path_length_is_hamming_plus_two(self, d, seed):
        import random

        rnd = random.Random(seed)
        hc = Hypercube(d)
        src = rnd.randrange(hc.num_processors)
        dst = rnd.randrange(hc.num_processors)
        if src == dst:
            assert hc.path_length(src, dst) == 0
        else:
            assert hc.path_length(src, dst) == bin(src ^ dst).count("1") + 2


class TestKaryNCube:
    def test_counts(self):
        t = KaryNCube(4, 3)
        assert t.num_processors == 64
        assert t.num_links == 64 * 3 + 128

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            KaryNCube(1, 2)
        with pytest.raises(ConfigurationError):
            KaryNCube(4, 0)

    def test_coordinates_round_trip(self):
        t = KaryNCube(5, 3)
        for u in (0, 7, 31, 124):
            coords = t.coordinates(u)
            rebuilt = sum(c * 5**i for i, c in enumerate(coords))
            assert rebuilt == u

    def test_neighbor_wraps(self):
        t = KaryNCube(4, 2)
        # Node with coordinate 3 in dim 0 wraps to coordinate 0.
        u = 3
        assert t._neighbor(u, 0) == 0

    def test_unidirectional_ring_distance(self):
        t = KaryNCube(8, 2)
        # going "backwards" costs k-1 hops on a unidirectional ring
        assert t.path_length(1, 0) == 7 + 2
        assert t.path_length(0, 1) == 1 + 2

    def test_ecube_walk_delivers(self):
        t = KaryNCube(4, 2)
        for src, dst in [(0, 15), (5, 10), (12, 3)]:
            node = t.injection_options(src).next_nodes[0]
            hops = 1
            while node != dst:
                opts = t.route_options(node, dst)
                node = opts.next_nodes[0]
                hops += 1
                assert hops < 100
            assert hops == t.path_length(src, dst)

    def test_ecube_fixes_dimension_zero_first(self):
        t = KaryNCube(4, 2)
        n = t.num_processors
        # From router (0,0) to PE (2,3) -> first hop in dim 0.
        dst = 2 + 3 * 4
        opts = t.route_options(n + 0, dst)
        assert opts.next_nodes[0] == n + 1

    def test_average_distance_closed_form(self):
        for k, nn in [(3, 2), (4, 2), (2, 3)]:
            t = KaryNCube(k, nn)
            assert kary_ncube_average_distance(k, nn) == pytest.approx(
                average_distance_by_enumeration(t)
            )

    def test_connected(self):
        assert nx.is_strongly_connected(to_networkx(KaryNCube(3, 2)))

    def test_describe(self):
        assert "k=4" in KaryNCube(4, 2).describe()
