"""Shared fixtures for the test suite.

Topology construction is cached at session scope — the fat-tree builders
are deterministic, and reusing them keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro import ButterflyFatTree, Hypercube, KaryNCube, SimConfig, Workload


@pytest.fixture(scope="session")
def bft16() -> ButterflyFatTree:
    return ButterflyFatTree(16)


@pytest.fixture(scope="session")
def bft64() -> ButterflyFatTree:
    return ButterflyFatTree(64)


@pytest.fixture(scope="session")
def bft256() -> ButterflyFatTree:
    return ButterflyFatTree(256)


@pytest.fixture(scope="session")
def cube6() -> Hypercube:
    return Hypercube(6)


@pytest.fixture(scope="session")
def torus8x2() -> KaryNCube:
    return KaryNCube(8, 2)


@pytest.fixture()
def quick_sim_config() -> SimConfig:
    """A short but statistically meaningful measurement protocol."""
    return SimConfig(warmup_cycles=1_000, measure_cycles=5_000, seed=1234)


@pytest.fixture()
def workload32() -> Workload:
    return Workload.from_flit_load(0.02, 32)
