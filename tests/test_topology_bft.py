"""Tests for the butterfly fat-tree topology (Figure 2, Section 3.1)."""

from __future__ import annotations

import collections

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ButterflyFatTree, ConfigurationError, bft_nca_level
from repro.errors import RoutingError
from repro.topology import DOWN, UP, LinkClass, to_networkx
from repro.topology.properties import (
    average_distance_by_enumeration,
    bft_average_distance,
    bft_distance_distribution,
    describe_topology,
)


class TestConstruction:
    @pytest.mark.parametrize("n_procs,levels", [(4, 1), (16, 2), (64, 3), (256, 4), (1024, 5)])
    def test_level_count(self, n_procs, levels):
        topo = ButterflyFatTree(n_procs)
        assert topo.levels == levels

    @pytest.mark.parametrize("bad", [0, 1, 2, 8, 32, 100, 48])
    def test_rejects_non_power_of_four(self, bad):
        with pytest.raises(ConfigurationError):
            ButterflyFatTree(bad)

    @pytest.mark.parametrize("n_procs", [16, 64, 256])
    def test_switch_population_per_level(self, n_procs):
        # The paper: N / 2^(l+1) switches at level l.
        topo = ButterflyFatTree(n_procs)
        for level in range(1, topo.levels + 1):
            assert topo.switches_at_level(level) == n_procs // 2 ** (level + 1)

    @pytest.mark.parametrize("n_procs", [16, 64, 256])
    def test_link_population_per_class(self, n_procs):
        # The paper: 4^n / 2^l links between levels l and l+1, per direction.
        topo = ButterflyFatTree(n_procs)
        for l in range(topo.levels):
            expected = n_procs // 2**l
            assert len(topo.links_in_class(LinkClass(UP, l))) == expected
            assert len(topo.links_in_class(LinkClass(DOWN, l))) == expected

    def test_total_link_count(self, bft64):
        assert bft64.num_links == 2 * sum(64 // 2**l for l in range(3))

    def test_six_ports_per_switch(self, bft64):
        # Every non-top switch has 4 children + 2 parents; top has 4 children.
        for level in range(1, bft64.levels + 1):
            for a in range(bft64.switches_at_level(level)):
                s = bft64.switch(level, a)
                assert len([x for x in s.down_links if x >= 0]) == 4
                expected_up = 0 if level == bft64.levels else 2
                assert len(s.up_links) == expected_up

    def test_parents_cover_same_block(self, bft256):
        # Both parents of a switch must cover the same leaf block, which is
        # why the random up-link choice preserves shortest paths.
        for level in range(1, bft256.levels):
            for a in range(bft256.switches_at_level(level)):
                s = bft256.switch(level, a)
                blocks = set()
                for target in s.up_targets:
                    p = bft256._switches[target]
                    blocks.add((p.block_lo, p.block_hi))
                assert len(blocks) == 1
                (lo, hi), = blocks
                assert lo <= s.block_lo and s.block_hi <= hi

    def test_children_partition_block(self, bft256):
        for level in range(1, bft256.levels + 1):
            for a in range(bft256.switches_at_level(level)):
                s = bft256.switch(level, a)
                assert sorted(s.subblock_port) == sorted(range(4))

    def test_distinct_parents(self, bft64):
        for level in range(1, bft64.levels):
            for a in range(bft64.switches_at_level(level)):
                s = bft64.switch(level, a)
                assert len(set(s.up_targets)) == 2

    def test_groups_partition_links(self, bft64):
        seen = [0] * bft64.num_links
        for members in bft64.groups:
            for e in members:
                seen[e] += 1
        assert all(c == 1 for c in seen)

    def test_up_pairs_grouped(self, bft64):
        # Up links (level >= 1) come in 2-member groups; everything else is singleton.
        for members in bft64.groups:
            if len(members) == 2:
                classes = {bft64.link_class[e] for e in members}
                assert len(classes) == 1
                (cls,) = classes
                assert cls.direction == UP and cls.level >= 1
            else:
                assert len(members) == 1

    def test_describe(self, bft64):
        text = bft64.describe()
        assert "N=64" in text and "levels=3" in text

    def test_describe_topology_summary(self, bft16):
        info = describe_topology(bft16)
        assert info["processors"] == 16
        assert info["links"] == bft16.num_links


class TestNcaAndPaths:
    def test_nca_same_quad(self):
        assert bft_nca_level(0, 3) == 1
        assert bft_nca_level(4, 7) == 1

    def test_nca_cross_quad(self):
        assert bft_nca_level(0, 4) == 2
        assert bft_nca_level(0, 15) == 2
        assert bft_nca_level(0, 16) == 3

    def test_nca_symmetric(self):
        for a, b in [(0, 63), (5, 37), (12, 13)]:
            assert bft_nca_level(a, b) == bft_nca_level(b, a)

    def test_nca_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            bft_nca_level(-1, 2)

    def test_path_length(self, bft64):
        assert bft64.path_length(0, 1) == 2
        assert bft64.path_length(0, 4) == 4
        assert bft64.path_length(0, 16) == 6
        assert bft64.path_length(9, 9) == 0

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=100)
    def test_property_nca_block_alignment(self, a, b):
        level = bft_nca_level(a, b)
        if a != b:
            assert a // 4**level == b // 4**level
            assert a // 4 ** (level - 1) != b // 4 ** (level - 1)


class TestRouting:
    def test_injection_targets_level1(self, bft64):
        for p in range(64):
            opts = bft64.injection_options(p)
            assert len(opts.links) == 1
            s = bft64._switches[opts.next_nodes[0]]
            assert s.level == 1 and s.block_lo <= p < s.block_hi

    def test_up_options_offered_outside_block(self, bft64):
        opts = bft64.injection_options(0)
        sw = opts.next_nodes[0]
        up = bft64.route_options(sw, 63)  # outside the level-1 block
        assert len(up.links) == 2

    def test_down_option_unique_inside_block(self, bft64):
        opts = bft64.injection_options(0)
        sw = opts.next_nodes[0]
        down = bft64.route_options(sw, 2)  # same quad
        assert len(down.links) == 1
        assert down.next_nodes[0] == 2

    def test_route_rejects_bad_destination(self, bft64):
        sw = bft64.injection_options(0).next_nodes[0]
        with pytest.raises(RoutingError):
            bft64.route_options(sw, 64)

    def test_route_rejects_pe_node(self, bft64):
        with pytest.raises(RoutingError):
            bft64.route_options(3, 5)  # 3 is a PE, not a switch

    def test_injection_rejects_bad_source(self, bft64):
        with pytest.raises(RoutingError):
            bft64.injection_options(64)

    @pytest.mark.parametrize("n_procs", [16, 64])
    def test_walk_all_pairs_reaches_destination(self, n_procs):
        """Follow the routing greedily (always taking parent0) for every
        ordered pair; the walk must deliver in exactly path_length hops."""
        topo = ButterflyFatTree(n_procs)
        for src in range(n_procs):
            for dst in range(n_procs):
                if src == dst:
                    continue
                opts = topo.injection_options(src)
                node = opts.next_nodes[0]
                hops = 1
                while node != dst:
                    opts = topo.route_options(node, dst)
                    node = opts.next_nodes[0]
                    hops += 1
                    assert hops <= 2 * topo.levels
                assert hops == topo.path_length(src, dst)

    def test_adaptive_choice_preserves_path_length(self, bft64):
        """Taking parent1 everywhere must deliver in the same hop count."""
        for src, dst in [(0, 63), (17, 42), (5, 58)]:
            opts = bft64.injection_options(src)
            node = opts.next_nodes[0]
            hops = 1
            while node != dst:
                opts = bft64.route_options(node, dst)
                node = opts.next_nodes[-1]
                hops += 1
            assert hops == bft64.path_length(src, dst)


class TestGraphProperties:
    def test_connected(self, bft64):
        g = to_networkx(bft64)
        assert nx.is_strongly_connected(g)

    @pytest.mark.parametrize("n_procs", [4, 16, 64])
    def test_average_distance_closed_form(self, n_procs):
        topo = ButterflyFatTree(n_procs)
        analytic = bft_average_distance(topo.levels)
        enumerated = average_distance_by_enumeration(topo)
        assert analytic == pytest.approx(enumerated)

    def test_distance_distribution_sums_to_one(self):
        for n in (1, 2, 3, 5):
            assert sum(bft_distance_distribution(n)) == pytest.approx(1.0)

    def test_distance_distribution_matches_counting(self):
        # Exact count for N=64: from any leaf, 3 destinations at NCA level 1,
        # 12 at level 2, 48 at level 3.
        dist = bft_distance_distribution(3)
        assert dist[1] == pytest.approx(3 / 63)
        assert dist[2] == pytest.approx(12 / 63)
        assert dist[3] == pytest.approx(48 / 63)

    def test_average_distance_values(self):
        assert bft_average_distance(1) == pytest.approx(2.0)
        assert bft_average_distance(5) == pytest.approx(9558 / 1023)

    def test_distribution_rejects_bad_levels(self):
        with pytest.raises(ConfigurationError):
            bft_distance_distribution(0)


@given(exponent=st.integers(1, 4))
@settings(max_examples=8, deadline=None)
def test_property_wiring_invariants(exponent):
    """Construction invariants over all supported sizes (hypothesis-driven).

    The constructor itself raises TopologyError if ports collide or blocks
    fail to partition, so successful construction already certifies the
    wiring; here we re-verify conservation laws on top.
    """
    n_procs = 4**exponent
    topo = ButterflyFatTree(n_procs)
    # Each PE has exactly one injection and one ejection link.
    inject = collections.Counter()
    eject = collections.Counter()
    for e in range(topo.num_links):
        cls = topo.link_class[e]
        if cls == LinkClass(UP, 0):
            inject[topo.link_src[e]] += 1
        if cls == LinkClass(DOWN, 0):
            eject[topo.link_dst[e]] += 1
    assert all(inject[p] == 1 for p in range(n_procs))
    assert all(eject[p] == 1 for p in range(n_procs))
