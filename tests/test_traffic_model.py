"""Tests for the pattern-aware analytical path (flows + stage graphs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ButterflyFatTree,
    ButterflyFatTreeModel,
    ChannelGraphModel,
    ConfigurationError,
    EntryPoint,
    HotspotSpec,
    Hypercube,
    ModelVariant,
    QuadLocalSpec,
    Stage,
    TornadoSpec,
    TransposeSpec,
    UniformSpec,
    Workload,
    bft_traffic_stage_graph,
    hypercube_traffic_stage_graph,
)
from repro.core import (
    latency_sweep,
    load_grid_to_saturation,
    saturation_injection_rate,
)
from repro.core.rates import bft_channel_rates, bft_channel_rates_for_matrix
from repro.topology.base import DOWN, UP
from repro.topology.properties import bft_average_distance
from repro.traffic import bft_channel_flows, single_path_flows

N = 64
FLITS = 16


def _class_links(topo, direction, level):
    return [
        e
        for e, c in enumerate(topo.link_class)
        if c.direction == direction and c.level == level
    ]


class TestBftFlows:
    def test_uniform_reproduces_eq14_per_link(self):
        topo = ButterflyFatTree(N)
        flows = bft_channel_flows(topo, UniformSpec())
        ref = bft_channel_rates(topo.levels, 1.0)
        for l in range(topo.levels):
            ups = flows.link_rate[_class_links(topo, UP, l)]
            assert np.allclose(ups, ref[l])
            downs = flows.link_rate[_class_links(topo, DOWN, l)]
            assert np.allclose(downs, ref[l])

    def test_flow_conservation(self):
        topo = ButterflyFatTree(N)
        for spec in (UniformSpec(), HotspotSpec(fraction=0.1), TransposeSpec()):
            flows = bft_channel_flows(topo, spec)
            inject = flows.link_rate[_class_links(topo, UP, 0)].sum()
            eject = flows.link_rate[_class_links(topo, DOWN, 0)].sum()
            assert inject == pytest.approx(flows.total_rate)
            assert eject == pytest.approx(inject)

    def test_uniform_average_distance(self):
        topo = ButterflyFatTree(N)
        flows = bft_channel_flows(topo, UniformSpec())
        assert flows.average_distance() == pytest.approx(
            bft_average_distance(topo.levels)
        )

    def test_hotspot_concentrates_on_hot_ejection(self):
        topo = ButterflyFatTree(N)
        spec = HotspotSpec(fraction=0.05, target=0)
        flows = bft_channel_flows(topo, spec)
        eject = _class_links(topo, DOWN, 0)
        hot = [e for e in eject if topo.link_dst[e] == 0][0]
        cold = [e for e in eject if topo.link_dst[e] != 0]
        # 63 sources * 0.05 each on the hot channel
        assert flows.link_rate[hot] == pytest.approx(63 * 0.05)
        assert flows.link_rate[hot] > 2.5 * max(flows.link_rate[e] for e in cold)

    def test_quad_local_never_climbs(self):
        topo = ButterflyFatTree(N)
        flows = bft_channel_flows(topo, QuadLocalSpec())
        for l in range(1, topo.levels):
            assert np.all(flows.link_rate[_class_links(topo, UP, l)] == 0.0)
        assert flows.average_distance() == pytest.approx(2.0)

    def test_matrix_class_average_matches_flows(self):
        topo = ButterflyFatTree(N)
        spec = TornadoSpec()
        flows = bft_channel_flows(topo, spec)
        avg = bft_channel_rates_for_matrix(
            topo.levels, 1.0, spec.destination_matrix(N)
        )
        for l in range(topo.levels):
            ups = flows.link_rate[_class_links(topo, UP, l)]
            assert np.mean(ups) == pytest.approx(avg[l])

    def test_matrix_class_average_uniform_is_eq14(self):
        m = UniformSpec().destination_matrix(N)
        assert np.allclose(
            bft_channel_rates_for_matrix(3, 0.01, m), bft_channel_rates(3, 0.01)
        )


class TestHypercubeFlows:
    def test_uniform_matches_class_rates(self):
        topo = Hypercube(4)
        flows = single_path_flows(topo, UniformSpec())
        lam_dim = (topo.num_processors // 2) / (topo.num_processors - 1)
        dims = flows.link_rate[: topo.num_processors * topo.dimension]
        assert np.allclose(dims, lam_dim)

    def test_traffic_model_solves(self):
        wl = Workload(FLITS, 0.002)
        model = hypercube_traffic_stage_graph(4, wl, TornadoSpec())
        lat = model.latency()
        assert np.isfinite(lat)
        assert lat > FLITS


class TestUniformEquivalence:
    """The per-channel graph must reproduce the closed-form model exactly
    (with the exact conditional climb probabilities, which flow
    conservation forces)."""

    def test_latency_matches_conditional_up_model(self):
        model = ButterflyFatTreeModel(N, ModelVariant.conditional_up())
        graph = model.traffic_model(UniformSpec(), FLITS)
        loads = np.array([0.0005, 0.002, 0.005, 0.008])
        a = graph.latency_batch(loads, FLITS)
        b = model.latency_batch(loads, FLITS)
        assert np.allclose(a, b, rtol=1e-10)

    def test_saturation_matches(self):
        model = ButterflyFatTreeModel(N, ModelVariant.conditional_up())
        graph = model.traffic_model(UniformSpec(), FLITS)
        sat_graph = saturation_injection_rate(graph, FLITS)
        sat_model = saturation_injection_rate(model, FLITS)
        assert sat_graph.injection_rate == pytest.approx(
            sat_model.injection_rate, rel=1e-5
        )

    def test_paper_variant_is_close(self):
        model = ButterflyFatTreeModel(N)
        graph = model.traffic_model(UniformSpec(), FLITS)
        loads = np.array([0.002, 0.006])
        a = graph.latency_batch(loads, FLITS)
        b = model.latency_batch(loads, FLITS)
        assert np.allclose(a, b, rtol=0.02)


class TestPatternModels:
    def test_hotspot_lowers_saturation(self):
        model = ButterflyFatTreeModel(N)
        sat_uniform = saturation_injection_rate(model, FLITS)
        sat_hot = saturation_injection_rate(
            model, FLITS, spec=HotspotSpec(fraction=0.2)
        )
        assert sat_hot.injection_rate < sat_uniform.injection_rate

    def test_quad_local_latency_below_uniform(self):
        model = ButterflyFatTreeModel(N)
        graph = model.traffic_model(QuadLocalSpec(), FLITS)
        wl = Workload(FLITS, 0.004)
        assert float(graph.latency_batch([wl.injection_rate], FLITS)[0]) < model.latency(wl)

    def test_silent_sources_have_no_entries(self):
        graph = bft_traffic_stage_graph(N, Workload(FLITS, 0.001), TransposeSpec())
        names = {e.name for e in graph.entries}
        assert f"inj0" not in names  # node 0 is a transpose fixed point
        assert len(names) == 56  # 64 - 8 fixed points

    def test_spec_sweep_is_batched(self, monkeypatch):
        """A non-uniform sweep must be one batch solve, not per-point work."""
        calls = {"n": 0}
        original = ChannelGraphModel.solve_batch

        def counting(self, rate_scales):
            calls["n"] += 1
            return original(self, rate_scales)

        monkeypatch.setattr(ChannelGraphModel, "solve_batch", counting)
        model = ButterflyFatTreeModel(N)
        grid = np.linspace(0.01, 0.08, 24)
        curve = latency_sweep(model, FLITS, grid, spec=HotspotSpec(fraction=0.05))
        assert curve.latencies.shape == (24,)
        assert calls["n"] == 1

    def test_load_grid_with_spec_uses_pattern_saturation(self):
        model = ButterflyFatTreeModel(N)
        spec = HotspotSpec(fraction=0.3)
        grid = load_grid_to_saturation(model, FLITS, n_points=8, spec=spec)
        sat = saturation_injection_rate(model, FLITS, spec=spec)
        assert grid[-1] == pytest.approx(0.98 * sat.flit_load)

    def test_traffic_model_validates_flits(self):
        graph = ButterflyFatTreeModel(N).traffic_model(UniformSpec(), FLITS)
        with pytest.raises(ConfigurationError):
            graph.latency_batch(np.array([0.001]), FLITS + 1)
        with pytest.raises(ConfigurationError):
            graph.stability_batch(np.array([0.001]), FLITS + 1)

    def test_spec_requires_traffic_aware_model(self):
        graph = ButterflyFatTreeModel(N).traffic_model(UniformSpec(), FLITS)
        with pytest.raises(ConfigurationError):
            latency_sweep(graph, FLITS, [0.01, 0.02], spec=UniformSpec())


class TestMultiEntryValidation:
    def test_entry_and_entries_are_exclusive(self):
        from repro import Transition

        stages = [
            Stage("ej", rate_per_server=0.01),
            Stage("inj", rate_per_server=0.01, transitions=(Transition("ej", 1.0),)),
        ]
        with pytest.raises(ConfigurationError):
            ChannelGraphModel(
                stages,
                message_flits=8,
                entry="inj",
                average_distance=2.0,
                entries=(EntryPoint("inj", 1.0, 2.0),),
            )
        with pytest.raises(ConfigurationError):
            ChannelGraphModel(stages, message_flits=8)

    def test_entry_weights_normalized(self):
        from repro import Transition

        stages = [
            Stage("ej", rate_per_server=0.01),
            Stage("a", rate_per_server=0.01, transitions=(Transition("ej", 1.0),)),
            Stage("b", rate_per_server=0.01, transitions=(Transition("ej", 1.0),)),
        ]
        g = ChannelGraphModel(
            stages,
            message_flits=8,
            entries=(EntryPoint("a", 3.0, 2.0), EntryPoint("b", 1.0, 2.0)),
        )
        assert sum(e.weight for e in g.entries) == pytest.approx(1.0)
        assert g.entry == "a"
        assert np.isfinite(g.latency())

    def test_bad_entry_point_rejected(self):
        with pytest.raises(ConfigurationError):
            EntryPoint("x", 0.0, 2.0)
        with pytest.raises(ConfigurationError):
            EntryPoint("x", 1.0, -1.0)


class TestModelVsSimulationAgreement:
    """The acceptance criterion: analytical and simulated latency within
    10% at half the pattern's saturation load on a 64-PE fat-tree."""

    def test_nonuniform_agreement_at_half_saturation(self):
        from repro.experiments.traffic_scenarios import run_traffic_scenarios
        from repro.experiments.common import ExperimentMode
        from repro.traffic import BitReversalSpec

        result = run_traffic_scenarios(
            num_processors=64,
            message_flits=16,
            scenarios=(
                HotspotSpec(fraction=0.05, target=0),
                TransposeSpec(),
                BitReversalSpec(),
            ),
            experiment_mode=ExperimentMode(full=False),
        )
        assert len(result.rows) == 3
        for row in result.rows:
            assert row.sim_stable, row.pattern
            assert abs(row.rel_err) <= 0.10, (row.pattern, row.rel_err)
        assert "Traffic scenarios" in result.render()
