"""Tests for the generalized (c, p) fat-tree family — the conclusion's extension."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ButterflyFatTree,
    ButterflyFatTreeModel,
    ConfigurationError,
    GeneralizedFatTree,
    GeneralizedFatTreeModel,
    ModelVariant,
    SimConfig,
    Workload,
    simulate,
)
from repro.core import saturation_injection_rate
from repro.core.generalized_model import (
    generalized_average_distance,
    generalized_channel_rates,
    generalized_up_probability,
)
from repro.topology.generalized_fattree import generalized_nca_level
from repro.topology.properties import average_distance_by_enumeration


class TestTopologyReducesToPaper:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_wiring_identical_to_bft(self, levels):
        g = GeneralizedFatTree(4, 2, levels)
        b = ButterflyFatTree(4**levels)
        assert g.link_src == b.link_src
        assert g.link_dst == b.link_dst
        assert g.link_class == b.link_class
        assert [sorted(x) for x in g.groups] == [sorted(x) for x in b.groups]

    def test_nca_matches(self):
        from repro import bft_nca_level

        for a, b in [(0, 63), (5, 7), (16, 47)]:
            assert generalized_nca_level(a, b, 4) == bft_nca_level(a, b)


class TestTopologyFamily:
    @pytest.mark.parametrize("c,p,n", [(2, 1, 3), (2, 2, 4), (4, 3, 3), (8, 2, 2), (3, 2, 3)])
    def test_construction_invariants(self, c, p, n):
        topo = GeneralizedFatTree(c, p, n)  # constructor verifies wiring
        assert topo.num_processors == c**n
        # switch populations: c^(n-l) p^(l-1)
        for level in range(1, n + 1):
            assert topo.switches_at_level(level) == c ** (n - level) * p ** (level - 1)
        # link count: 2 * sum_l (#switches at l+... per-direction links between
        # levels l and l+1 = N (p/c)^l ... = switches_at(l+1)*c... check via
        # class populations:
        from repro.topology import UP, LinkClass

        for l in range(n):
            links = [e for e, cl in enumerate(topo.link_class) if cl == LinkClass(UP, l)]
            if l == 0:
                assert len(links) == c**n
            else:
                assert len(links) == topo.switches_at_level(l) * p

    @pytest.mark.parametrize("c,p,n", [(2, 2, 3), (4, 3, 2), (8, 2, 2)])
    def test_routing_walk_all_pairs(self, c, p, n):
        topo = GeneralizedFatTree(c, p, n)
        n_procs = topo.num_processors
        for src in range(0, n_procs, max(1, n_procs // 16)):
            for dst in range(n_procs):
                if src == dst:
                    continue
                opts = topo.injection_options(src)
                node = opts.next_nodes[0]
                hops = 1
                while node != dst:
                    opts = topo.route_options(node, dst)
                    node = opts.next_nodes[0]
                    hops += 1
                    assert hops <= 2 * n
                assert hops == topo.path_length(src, dst)

    def test_group_sizes_are_p(self):
        topo = GeneralizedFatTree(4, 3, 2)
        sizes = {len(g) for g in topo.groups}
        assert sizes == {1, 3}

    @pytest.mark.parametrize("c,n", [(2, 3), (3, 2), (4, 2)])
    def test_average_distance_closed_form(self, c, n):
        topo = GeneralizedFatTree(c, 2, n)
        assert generalized_average_distance(c, n) == pytest.approx(
            average_distance_by_enumeration(topo)
        )

    def test_rejects_bad_parameters(self):
        for args in [(1, 2, 2), (4, 0, 2), (4, 2, 0)]:
            with pytest.raises(ConfigurationError):
                GeneralizedFatTree(*args)

    def test_describe(self):
        assert "c=4, p=3" in GeneralizedFatTree(4, 3, 2).describe()


class TestModelReducesToPaper:
    @pytest.mark.parametrize("levels", [1, 2, 3, 4])
    @pytest.mark.parametrize("load", [0.01, 0.05])
    def test_latency_identical(self, levels, load):
        wl = Workload.from_flit_load(load, 32)
        gen = GeneralizedFatTreeModel(4, 2, levels).latency(wl)
        paper = ButterflyFatTreeModel(4**levels).latency(wl)
        if math.isinf(paper):
            assert math.isinf(gen)
        else:
            assert gen == pytest.approx(paper, rel=1e-12)

    @pytest.mark.parametrize(
        "variant",
        [ModelVariant.paper(), ModelVariant.naive(), ModelVariant.conditional_up()],
        ids=lambda v: v.label,
    )
    def test_variants_identical(self, variant):
        wl = Workload.from_flit_load(0.03, 16)
        gen = GeneralizedFatTreeModel(4, 2, 3, variant).latency(wl)
        paper = ButterflyFatTreeModel(64, variant).latency(wl)
        assert gen == pytest.approx(paper, rel=1e-12)

    def test_rates_identical(self):
        import numpy as np

        from repro.core.rates import bft_channel_rates

        assert np.allclose(
            generalized_channel_rates(4, 2, 4, 0.01), bft_channel_rates(4, 0.01)
        )


class TestModelFamily:
    def test_up_probability_counting(self):
        assert generalized_up_probability(2, 3, 1) == pytest.approx((8 - 2) / 7)
        assert generalized_up_probability(8, 2, 1) == pytest.approx((64 - 8) / 63)

    def test_zero_load_closed_form(self):
        for c, p, n in [(2, 2, 4), (4, 3, 3), (8, 2, 2)]:
            m = GeneralizedFatTreeModel(c, p, n)
            assert m.latency(Workload(32, 0.0)) == pytest.approx(
                m.zero_load_latency(32)
            )

    def test_more_parents_lower_latency(self):
        # Extra up-link redundancy must not hurt at equal load.
        wl = Workload.from_flit_load(0.1, 32)
        l2 = GeneralizedFatTreeModel(4, 2, 3).latency(wl)
        l3 = GeneralizedFatTreeModel(4, 3, 3).latency(wl)
        l4 = GeneralizedFatTreeModel(4, 4, 3).latency(wl)
        assert l3 < l2
        assert l4 < l3

    def test_more_parents_higher_saturation(self):
        sats = [
            saturation_injection_rate(GeneralizedFatTreeModel(4, p, 3), 32).flit_load
            for p in (1, 2, 3, 4)
        ]
        assert sats == sorted(sats)

    @pytest.mark.parametrize("c,p,n", [(4, 3, 3), (2, 2, 4), (4, 4, 2)])
    def test_model_tracks_simulation(self, c, p, n):
        """M/G/p waits (p > 2) must validate against the simulator — the
        quantitative form of the paper's concluding claim."""
        model = GeneralizedFatTreeModel(c, p, n)
        topo = GeneralizedFatTree(c, p, n)
        sat = saturation_injection_rate(model, 32).flit_load
        for frac in (0.3, 0.6):
            wl = Workload.from_flit_load(frac * sat, 32)
            res = simulate(
                topo, wl, SimConfig(warmup_cycles=1500, measure_cycles=7000, seed=8)
            )
            assert res.stable
            assert model.latency(wl) == pytest.approx(res.latency_mean, rel=0.06)

    def test_solution_saturation_flag(self):
        m = GeneralizedFatTreeModel(8, 2, 2)
        assert m.solve(Workload.from_flit_load(0.5, 32)).saturated
        assert not m.solve(Workload.from_flit_load(0.01, 32)).saturated

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            GeneralizedFatTreeModel(1, 2, 2)
        with pytest.raises(ConfigurationError):
            GeneralizedFatTreeModel(4, 2, 2).solve(0.1)  # type: ignore[arg-type]

    @given(
        c=st.sampled_from([2, 3, 4]),
        p=st.sampled_from([1, 2, 3]),
        n=st.integers(1, 3),
        load=st.floats(0.001, 0.05),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_latency_above_zero_load(self, c, p, n, load):
        m = GeneralizedFatTreeModel(c, p, n)
        lat = m.latency_at_flit_load(load, 16)
        assert lat >= m.zero_load_latency(16) - 1e-9


class TestGeneralizedStageGraph:
    """The generalized sweep must be an instance of the Section-2 recursion."""

    @pytest.mark.parametrize("c,p,n", [(4, 2, 3), (4, 3, 3), (8, 2, 2), (2, 2, 4)])
    @pytest.mark.parametrize("load", [0.02, 0.1])
    def test_matches_closed_form(self, c, p, n, load):
        from repro import generalized_fattree_stage_graph

        wl = Workload.from_flit_load(load, 16)
        closed = GeneralizedFatTreeModel(c, p, n).latency(wl)
        generic = generalized_fattree_stage_graph(c, p, n, wl).latency()
        if math.isinf(closed):
            assert math.isinf(generic)
        else:
            assert generic == pytest.approx(closed, rel=1e-12)

    def test_reduces_to_bft_graph(self):
        from repro import bft_stage_graph, generalized_fattree_stage_graph

        wl = Workload.from_flit_load(0.03, 32)
        a = generalized_fattree_stage_graph(4, 2, 3, wl).latency()
        b = bft_stage_graph(64, wl).latency()
        assert a == pytest.approx(b, rel=1e-12)

    def test_variant_passthrough(self):
        from repro import generalized_fattree_stage_graph

        wl = Workload.from_flit_load(0.05, 16)
        naive_closed = GeneralizedFatTreeModel(4, 3, 2, ModelVariant.naive()).latency(wl)
        naive_generic = generalized_fattree_stage_graph(
            4, 3, 2, wl, ModelVariant.naive()
        ).latency()
        assert naive_generic == pytest.approx(naive_closed, rel=1e-12)
