"""Tests for repro.util: fixed point, RNG streams, stats, tables, validation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ConvergenceError
from repro.util import (
    OnlineStats,
    ascii_curve,
    check_non_negative,
    check_positive,
    check_power_of,
    check_probability,
    fixed_point,
    format_table,
    mean_confidence_interval,
    spawn_rngs,
    spawn_seeds,
)
from repro.util.rng import replication_seeds
from repro.util.stats import batch_means


class TestFixedPoint:
    def test_linear_contraction(self):
        res = fixed_point(lambda x: 0.5 * x + 1.0, np.array([0.0]))
        assert res.converged
        assert res.value[0] == pytest.approx(2.0)

    def test_vector_map(self):
        a = np.array([[0.2, 0.1], [0.0, 0.3]])
        b = np.array([1.0, 2.0])
        res = fixed_point(lambda x: a @ x + b, np.zeros(2))
        expected = np.linalg.solve(np.eye(2) - a, b)
        assert np.allclose(res.value, expected)

    def test_damping_stabilises_oscillation(self):
        # x <- -x + 4 oscillates undamped; damping 0.5 converges to 2.
        res = fixed_point(
            lambda x: -x + 4.0, np.array([0.0]), damping=0.5, max_iter=5000
        )
        assert res.value[0] == pytest.approx(2.0)

    def test_divergence_raises(self):
        with pytest.raises(ConvergenceError):
            fixed_point(lambda x: 2.0 * x + 1.0, np.array([1.0]), max_iter=100)

    def test_allow_divergence(self):
        res = fixed_point(
            lambda x: 2.0 * x + 1.0, np.array([1.0]), max_iter=50, allow_divergence=True
        )
        assert not res.converged

    def test_inf_is_terminal(self):
        res = fixed_point(lambda x: x * np.inf, np.array([1.0]))
        assert res.converged
        assert math.isinf(res.value[0])

    def test_bad_damping_rejected(self):
        with pytest.raises(ValueError):
            fixed_point(lambda x: x, np.array([1.0]), damping=0.0)


class TestRng:
    def test_streams_are_independent(self):
        a, b = spawn_rngs(42, 2)
        xa = a.random(1000)
        xb = b.random(1000)
        assert abs(np.corrcoef(xa, xb)[0, 1]) < 0.1

    def test_reproducible(self):
        a1, = spawn_rngs(7, 1)
        a2, = spawn_rngs(7, 1)
        assert np.array_equal(a1.random(10), a2.random(10))

    def test_different_seeds_differ(self):
        a, = spawn_rngs(1, 1)
        b, = spawn_rngs(2, 1)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_spawn_seeds_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_replication_seeds_distinct(self):
        seeds = replication_seeds(3, 10)
        assert len(set(seeds)) == 10

    def test_replication_seeds_no_cross_collision(self):
        s1 = set(replication_seeds(1, 20))
        s2 = set(replication_seeds(2, 20))
        assert not (s1 & s2)

    def test_replication_seeds_never_duplicate_within_a_set(self):
        # Satellite regression: the old % (2**63 - 1) fold was biased and
        # could in principle collide two replications of one set.  Seeds
        # are now the raw 64-bit entropy words, checked unique per set.
        for base_seed in range(50):
            seeds = replication_seeds(base_seed, 16)
            assert len(set(seeds)) == 16
            assert all(0 <= s < 2**64 for s in seeds)

    def test_replication_seeds_unfolded(self):
        # The derivation is the child's first entropy word, unmodified.
        expected = [
            int(c.generate_state(1, dtype=np.uint64)[0])
            for c in spawn_seeds(9, 4)
        ]
        assert list(replication_seeds(9, 4)) == expected

    def test_replication_seeds_deterministic(self):
        assert list(replication_seeds(5, 8)) == list(replication_seeds(5, 8))


class TestOnlineStats:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(10.0, 3.0, size=500)
        s = OnlineStats()
        s.add_many(xs)
        assert s.mean == pytest.approx(float(np.mean(xs)))
        assert s.variance == pytest.approx(float(np.var(xs, ddof=1)))
        assert s.min == pytest.approx(float(np.min(xs)))
        assert s.max == pytest.approx(float(np.max(xs)))

    def test_empty(self):
        s = OnlineStats()
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)

    def test_single_sample(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert math.isnan(s.std)

    def test_merge(self):
        rng = np.random.default_rng(1)
        xs = rng.random(100)
        a, b = OnlineStats(), OnlineStats()
        a.add_many(xs[:30])
        b.add_many(xs[30:])
        merged = a.merge(b)
        assert merged.count == 100
        assert merged.mean == pytest.approx(float(np.mean(xs)))
        assert merged.variance == pytest.approx(float(np.var(xs, ddof=1)))

    def test_merge_with_empty(self):
        a = OnlineStats()
        a.add(1.0)
        assert a.merge(OnlineStats()).mean == 1.0
        assert OnlineStats().merge(a).mean == 1.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    @settings(max_examples=50)
    def test_property_matches_numpy(self, xs):
        s = OnlineStats()
        s.add_many(xs)
        assert s.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)


class TestConfidenceIntervals:
    def test_tightens_with_samples(self):
        rng = np.random.default_rng(2)
        _, h1 = mean_confidence_interval(rng.normal(size=10))
        _, h2 = mean_confidence_interval(rng.normal(size=1000))
        assert h2 < h1

    def test_single_sample_infinite(self):
        m, h = mean_confidence_interval([3.0])
        assert m == 3.0
        assert math.isinf(h)

    def test_empty(self):
        m, h = mean_confidence_interval([])
        assert math.isnan(m)

    def test_batch_means_close_to_mean(self):
        rng = np.random.default_rng(3)
        xs = rng.normal(5.0, 1.0, size=2000)
        m, h = batch_means(xs)
        assert m == pytest.approx(5.0, abs=0.2)
        assert h < 0.5

    def test_batch_means_small_sample_fallback(self):
        m, _ = batch_means([1.0, 2.0, 3.0])
        assert m == pytest.approx(2.0)


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, None]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]
        assert "10" in lines[3]
        assert "-" in lines[3]  # None cell

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_infinity_rendering(self):
        out = format_table(["x"], [[math.inf], [-math.inf], [math.nan]])
        assert "inf" in out and "-inf" in out and "nan" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_none_and_infinities_share_column_width(self):
        out = format_table(["v"], [[None], [math.inf], [-math.inf], [1.5]])
        lines = out.splitlines()
        # Widest cell is "-inf" (4 chars); every line must be padded to it.
        assert len({len(l) for l in lines}) == 1
        assert lines[2].strip() == "-"
        assert lines[3].strip() == "inf"
        assert lines[4].strip() == "-inf"

    def test_column_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["bbbb", 1000]])
        header, sep, *rows = out.splitlines()
        # Headers are left-justified, cells right-justified, all padded to
        # the widest entry of their column.
        assert header.startswith("name ")
        assert all(len(l) == len(header) for l in [sep, *rows])
        assert rows[0].split(" | ")[0] == "   a"
        assert rows[0].split(" | ")[1] == "    1"
        assert rows[1].split(" | ")[1] == " 1000"

    def test_floatfmt_override(self):
        out = format_table(["x"], [[1.23456]], floatfmt=".2f")
        assert "1.23" in out and "1.2346" not in out

    def test_header_sets_minimum_width(self):
        out = format_table(["long header", "x"], [[1, 2]])
        header, sep, row = out.splitlines()
        assert len(row) == len(header) == len(sep)
        assert row.split(" | ")[0].endswith("1")

    def test_ascii_curve_draws_markers(self):
        out = ascii_curve([0, 1, 2], {"m": [1.0, 2.0, 3.0], "s": [1.1, 2.1, 3.1]})
        assert "*" in out and "o" in out
        assert "legend" in out

    def test_ascii_curve_skips_nonfinite(self):
        out = ascii_curve([0, 1], {"m": [math.inf, 1.0]})
        grid = "\n".join(l for l in out.splitlines() if not l.startswith("   legend"))
        assert grid.count("*") == 1

    def test_ascii_curve_empty(self):
        assert "no finite points" in ascii_curve([0.0], {"m": [math.nan]})


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2) == 2.0
        for bad in (0, -1, math.inf, math.nan, "a"):
            with pytest.raises(ConfigurationError):
                check_positive("x", bad)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0.0
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -0.1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        for bad in (-0.01, 1.01):
            with pytest.raises(ConfigurationError):
                check_probability("p", bad)

    @pytest.mark.parametrize("value,base,exp", [(4, 4, 1), (64, 4, 3), (1024, 4, 5), (8, 2, 3)])
    def test_check_power_of(self, value, base, exp):
        assert check_power_of("n", value, base) == exp

    @pytest.mark.parametrize("value", [0, 1, 2, 3, 5, 12, 48, 100])
    def test_check_power_of_four_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_power_of("n", value, 4)
