"""Bench SERVE — scenario-cache hit throughput and indexed registry queries.

The scenario service's two performance promises:

* a cache *hit* answers in index-lookup time — orders of magnitude under
  a fresh solve (``serve_cache_speedup``: cold solve seconds over cached
  lookup seconds);
* a *selective* registry query through the SQLite index touches only the
  matching records, while the linear JSONL scan parses every line — at
  ten thousand records the indexed path must be at least 20x faster
  (``index_query_speedup``, asserted below).

Both paths also run inside the canonical perf baseline
(``benchmarks/BENCH_perf.json``, written by :mod:`run_benchmarks`) as the
``serve_cached_lookup`` / ``registry_query_indexed`` /
``registry_query_scan`` entries, so CI's quick mode tracks them per PR.

Run directly with

    PYTHONPATH=src pytest benchmarks/bench_serve.py --benchmark-only
"""

from __future__ import annotations

import statistics
import tempfile
import time
from pathlib import Path

from conftest import register_result

from repro.experiments import write_report
from repro.runs import RunIndex, RunRegistry, RunResult, Scenario, run
from repro.serve import ScenarioCache

#: Record count the headline speedup is measured at (the paper-repro
#: registry after a few hundred PRs of sweeps, not a toy).
FULL_REGISTRY_RECORDS = 10_000

#: Labels: the bulk of the registry vs the handful a selective query wants.
_BULK_LABELS = 7
_NEEDLES = 5


def bench_scenario(**overrides) -> Scenario:
    """The scenario the cache benches solve (small enough to repeat)."""
    defaults = dict(
        num_processors=64,
        message_flits=16,
        flit_load=0.03,
        sweep_points=8,
        label="bench-serve",
    )
    defaults.update(overrides)
    return Scenario(**defaults)


_SEEDED: dict[int, RunRegistry] = {}


def seeded_registry(records: int) -> RunRegistry:
    """A registry of ``records`` synthetic runs (memoized per size).

    Every record goes through ``RunRegistry.save`` — the canonical append
    path — so the benches time exactly what production reads see.  A few
    ``needle``-labelled records are sprinkled in: the selective query the
    index answers from its B-tree while the scan parses all lines.
    """
    registry = _SEEDED.get(records)
    if registry is not None:
        return registry
    root = Path(tempfile.mkdtemp(prefix=f"repro-bench-serve-{records}-"))
    registry = RunRegistry(root / "registry")
    scenario = Scenario(
        num_processors=16, message_flits=16, flit_load=0.02, sweep_points=0
    )
    needle_every = max(1, records // _NEEDLES)
    for i in range(records):
        is_needle = i % needle_every == needle_every - 1
        registry.save(
            RunResult(
                metrics={"point": {"latency": 20.0 + (i % 50)}},
                scenario=scenario,
                label="needle" if is_needle else f"bulk-{i % _BULK_LABELS}",
                created_at=float(i + 1),
            )
        )
    _SEEDED[records] = registry
    return registry


def warm_cache(registry: RunRegistry) -> tuple[ScenarioCache, Scenario]:
    """A cache whose backing registry already holds the bench scenario."""
    cache = ScenarioCache(registry)
    scenario = bench_scenario()
    cache.solve(scenario)  # miss once so every timed solve is a hit
    return cache, scenario


def cold_solve_bench():
    """A fresh solve of the bench scenario — what every cache miss pays."""
    scenario = bench_scenario()
    return lambda: run(scenario)


def cached_solve_bench(registry: RunRegistry):
    cache, scenario = warm_cache(registry)

    def solve():
        record, was_hit = cache.solve(scenario)
        assert was_hit
        return record

    return solve


def indexed_query_bench(registry: RunRegistry, label: str = "needle"):
    index = RunIndex(registry)
    index.refresh()  # timed runs measure the query, not the build
    return lambda: index.query(label=label)


def scan_query_bench(registry: RunRegistry, label: str = "needle"):
    list(registry)  # parity: let the scan start from its warmed memo
    return lambda: registry.query(label=label)


def _median_seconds(fn, *, repeats: int = 5, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_cached_lookup_beats_cold_solve(benchmark):
    """A cache hit answers far faster than re-solving the scenario."""
    registry = seeded_registry(FULL_REGISTRY_RECORDS)
    solve = cached_solve_bench(registry)
    record = benchmark(solve)
    assert record.scenario == bench_scenario()
    cold_s = _median_seconds(lambda: run(bench_scenario()), repeats=3)
    benchmark.extra_info["cold_solve_s"] = cold_s
    if benchmark.stats is not None:  # absent under --benchmark-disable
        cached_s = benchmark.stats["median"]
        benchmark.extra_info["cached_queries_per_s"] = 1.0 / cached_s
        benchmark.extra_info["serve_cache_speedup"] = cold_s / cached_s
        assert cached_s < cold_s


def test_indexed_query_20x_faster_than_scan_at_10k(benchmark):
    """The headline contract: selective indexed queries >= 20x the scan."""
    registry = seeded_registry(FULL_REGISTRY_RECORDS)
    indexed = indexed_query_bench(registry)
    scan = scan_query_bench(registry)
    expected = scan()
    assert len(expected) == _NEEDLES
    assert benchmark(indexed) == expected
    scan_s = _median_seconds(scan, repeats=3)
    benchmark.extra_info["scan_s"] = scan_s
    if benchmark.stats is not None:
        indexed_s = benchmark.stats["median"]
        speedup = scan_s / indexed_s
        benchmark.extra_info["index_query_speedup"] = speedup
        assert speedup >= 20.0, (
            f"indexed query only {speedup:.1f}x faster than the linear scan "
            f"at {FULL_REGISTRY_RECORDS} records"
        )
    lines = [
        f"registry records:      {FULL_REGISTRY_RECORDS}",
        f"linear scan median:    {scan_s * 1e3:.3f} ms",
    ]
    if benchmark.stats is not None:
        lines.append(f"indexed query median:  {indexed_s * 1e3:.3f} ms")
        lines.append(f"speedup:               {speedup:.1f}x")
    path = write_report("serve_index_queries", "\n".join(lines))
    register_result(path)
