"""Bench DESIGN — throughput of the design-space exploration engine.

The explorer's promise is "answers in milliseconds per configuration":
this bench measures candidates evaluated per second on a mixed space
(two topology families × uniform + hotspot traffic × two message
lengths), cold metrics cache per round, and a memoized re-exploration of
the same space (which should be effectively free).

The rendered exploration report lands in
``benchmarks/results/design_exploration.txt``; the canonical perf
baseline (``benchmarks/BENCH_perf.json``, written by
:mod:`run_benchmarks`) tracks the same engine through its
``design_explore`` entry.
"""

from __future__ import annotations

import time

from conftest import register_result

import run_benchmarks
from repro.design import Requirements, clear_metrics_cache, explore
from repro.experiments import write_report

REQUIREMENTS = Requirements(demand_flit_load=0.02, latency_slo=75.0)


def _space():
    return run_benchmarks.design_space_for(run_benchmarks.BenchConfig())


def test_design_explore_cold(benchmark):
    """Full exploration with a cold metrics cache each round."""
    space = _space()
    n_candidates = len(space.candidates())

    def run():
        clear_metrics_cache()
        return explore(space, REQUIREMENTS)

    result = benchmark(run)
    assert len(result.evaluations) == n_candidates
    benchmark.extra_info["candidates"] = n_candidates
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["candidates_per_s"] = (
            n_candidates / benchmark.stats["median"]
        )
    path = write_report("design_exploration", result.render())
    register_result(path)


def test_design_explore_memoized(benchmark):
    """Re-exploring an already-evaluated space costs only bookkeeping."""
    space = _space()
    explore(space, REQUIREMENTS)  # warm the cache once
    result = benchmark(lambda: explore(space, REQUIREMENTS))
    assert result.cheapest_feasible is not None
    # The memoized pass must be at least an order of magnitude faster than
    # a per-candidate model solve could ever be (pure dict lookups).
    start = time.perf_counter()
    explore(space, REQUIREMENTS)
    assert time.perf_counter() - start < 0.5
