"""Benchmark-suite configuration.

Each benchmark regenerates one artifact of the paper's evaluation and
writes its rendered table under ``benchmarks/results/``.  The
``pytest_terminal_summary`` hook below echoes every table produced during
the session into the terminal report, so a plain

    pytest benchmarks/ --benchmark-only

leaves both machine-readable files and a human-readable transcript.
"""

from __future__ import annotations

from pathlib import Path

_WRITTEN: list[Path] = []


def register_result(path: Path) -> None:
    """Record a result file for the end-of-session summary."""
    _WRITTEN.append(path)


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103
    if not _WRITTEN:
        return
    terminalreporter.write_sep("=", "reproduction results")
    for path in _WRITTEN:
        try:
            content = path.read_text(encoding="utf-8")
        except OSError:
            continue
        terminalreporter.write_line(f"--- {path} ---")
        for line in content.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
