"""Bench SCALE — latency across network sizes (up to 1024 processors).

Regenerates the size sweep behind Section 3.6's "networks with up to 1024
processing nodes".  Results land in ``benchmarks/results/scaling.txt``.
"""

from __future__ import annotations

import math

from conftest import register_result

from repro.experiments import run_scaling, write_report


def test_scaling(benchmark):
    """Model must track simulation at every size and load fraction."""
    result = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    path = write_report("scaling", result.render())
    register_result(path)
    worst = 0.0
    for row in result.rows:
        if math.isfinite(row.rel_err):
            worst = max(worst, abs(row.rel_err))
    benchmark.extra_info["worst_abs_rel_err"] = worst
    assert worst < 0.12, f"worst relative error {worst:.1%}"
