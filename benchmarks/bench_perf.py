"""Bench PERF — engineering performance of the solver and simulators.

Unlike the reproduction benches (which time one full experiment), these are
conventional micro-benchmarks: pytest-benchmark repeats each operation and
reports distribution statistics.  They guard against performance
regressions in the hot paths identified by profiling (model sweeps inside
the saturation bisection; simulator event loops).
"""

from __future__ import annotations

from repro import (
    ButterflyFatTree,
    ButterflyFatTreeModel,
    SimConfig,
    Workload,
    saturation_injection_rate,
    simulate,
)
from repro.core.generic_model import bft_stage_graph


def test_model_solve_1024(benchmark):
    """One closed-form solve at the paper's headline size."""
    model = ButterflyFatTreeModel(1024)
    wl = Workload.from_flit_load(0.02, 32)
    result = benchmark(lambda: model.latency(wl))
    assert result > 0


def test_generic_solver_1024(benchmark):
    """The generic channel-graph solver on the same instance."""
    wl = Workload.from_flit_load(0.02, 32)
    result = benchmark(lambda: bft_stage_graph(1024, wl).latency())
    assert result > 0


def test_saturation_search_1024(benchmark):
    """Full Eq. 26 bracket-plus-bisection at N=1024."""
    model = ButterflyFatTreeModel(1024)
    result = benchmark(lambda: saturation_injection_rate(model, 32).flit_load)
    assert 0.02 < result < 0.06


def test_topology_construction_1024(benchmark):
    """Wiring all 496 switches and ~4k links of the 1024-PE fat-tree."""
    topo = benchmark(lambda: ButterflyFatTree(1024))
    assert topo.num_links == 2 * sum(1024 // 2**l for l in range(5))


def test_event_sim_throughput(benchmark):
    """Event-driven simulator: short fixed workload on a 256-PE tree."""
    topo = ButterflyFatTree(256)
    wl = Workload.from_flit_load(0.04, 16)

    def run():
        cfg = SimConfig(warmup_cycles=200, measure_cycles=2000, seed=5)
        return simulate(topo, wl, cfg, keep_samples=False)

    result = benchmark(run)
    assert result.tagged_delivered > 0
