"""Bench PERF — engineering performance of the solver and simulators.

Unlike the reproduction benches (which time one full experiment), these are
conventional micro-benchmarks: pytest-benchmark repeats each operation and
reports distribution statistics.  They guard against performance
regressions in the hot paths identified by profiling (model sweeps inside
the saturation search; simulator event loops).

The batch-engine benches compare a whole 64-point N=1024 load sweep solved
in one ``latency_batch`` NumPy pass against the same grid looped through
scalar ``latency`` calls, and the vectorized saturation bracket against the
scalar bisection.  ``test_batch_baseline_json`` additionally runs the
headless suite from :mod:`run_benchmarks` and writes
``benchmarks/BENCH_perf.json`` so the speedups are tracked across PRs.
"""

from __future__ import annotations

import numpy as np
from conftest import register_result

import run_benchmarks
from repro import (
    ButterflyFatTree,
    ButterflyFatTreeModel,
    SimConfig,
    Workload,
    saturation_injection_rate,
    simulate,
)
from repro.core.generic_model import bft_stage_graph


def test_model_solve_1024(benchmark):
    """One closed-form solve at the paper's headline size."""
    model = ButterflyFatTreeModel(1024)
    wl = Workload.from_flit_load(0.02, 32)
    result = benchmark(lambda: model.latency(wl))
    assert result > 0


def test_generic_solver_1024(benchmark):
    """The generic channel-graph solver on the same instance."""
    wl = Workload.from_flit_load(0.02, 32)
    result = benchmark(lambda: bft_stage_graph(1024, wl).latency())
    assert result > 0


def test_saturation_search_1024(benchmark):
    """Full Eq. 26 search at N=1024 (vectorized bracket by default)."""
    model = ButterflyFatTreeModel(1024)
    result = benchmark(lambda: saturation_injection_rate(model, 32).flit_load)
    assert 0.02 < result < 0.06


def test_saturation_search_scalar_1024(benchmark):
    """The seed's scalar bracket-plus-bisection, kept as the comparison."""
    model = ButterflyFatTreeModel(1024)
    result = benchmark(
        lambda: saturation_injection_rate(model, 32, vectorized=False).flit_load
    )
    assert 0.02 < result < 0.06


def test_batch_sweep_64pt_1024(benchmark):
    """One latency_batch pass over a 64-point load grid at N=1024."""
    model = ButterflyFatTreeModel(1024)
    rates = np.linspace(0.002, 0.05, 64) / 32
    latencies = benchmark(lambda: model.latency_batch(rates, 32))
    assert np.isfinite(latencies).any() and np.isinf(latencies).any()


def test_scalar_sweep_64pt_1024(benchmark):
    """The same 64-point grid looped through scalar latency calls."""
    model = ButterflyFatTreeModel(1024)
    workloads = [Workload(32, float(x)) for x in np.linspace(0.002, 0.05, 64) / 32]
    latencies = benchmark(lambda: [model.latency(wl) for wl in workloads])
    assert any(np.isfinite(x) for x in latencies)


def test_batch_baseline_json(benchmark):
    """Headless suite: asserts the batch speedup and refreshes the baseline.

    ``benchmarks/BENCH_perf.json`` is the single canonical baseline path —
    this test and an explicit ``python benchmarks/run_benchmarks.py`` run
    both write it, so there is exactly one perf trajectory to diff across
    PRs (run the perf bench deliberately; it updates the tracked file).
    """
    report = benchmark.pedantic(
        lambda: run_benchmarks.collect(repeats=3), rounds=1, iterations=1
    )
    path = run_benchmarks.write_baseline(report, run_benchmarks.DEFAULT_OUTPUT)
    register_result(path)
    speedup = report["derived"]["batch_sweep_speedup"]
    benchmark.extra_info["batch_sweep_speedup"] = speedup
    benchmark.extra_info["saturation_speedup"] = report["derived"]["saturation_speedup"]
    # Acceptance floor for the batch engine (observed ~50-70x).
    assert speedup >= 5.0, f"batch sweep only {speedup:.1f}x faster than scalar loop"


def test_topology_construction_1024(benchmark):
    """Wiring all 496 switches and ~4k links of the 1024-PE fat-tree."""
    topo = benchmark(lambda: ButterflyFatTree(1024))
    assert topo.num_links == 2 * sum(1024 // 2**l for l in range(5))


def test_event_sim_throughput(benchmark):
    """Event-driven simulator: short fixed workload on a 256-PE tree."""
    topo = ButterflyFatTree(256)
    wl = Workload.from_flit_load(0.04, 16)

    def run():
        cfg = SimConfig(warmup_cycles=200, measure_cycles=2000, seed=5)
        return simulate(topo, wl, cfg, keep_samples=False)

    result = benchmark(run)
    assert result.tagged_delivered > 0
