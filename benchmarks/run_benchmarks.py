"""Headless performance benchmark runner.

Runs the engineering micro-benchmarks (no pytest, no simulators) and writes
``BENCH_perf.json`` — median wall-clock seconds per bench plus derived
speedup ratios — so each PR leaves a machine-readable perf trajectory to
compare against:

    PYTHONPATH=src python benchmarks/run_benchmarks.py

The headline numbers guard the batch solver engine: a 64-point N=1024 load
sweep solved in one ``latency_batch`` pass versus the same grid looped
through scalar ``latency`` calls, and the vectorized Eq. 26 saturation
search versus the scalar bracket-plus-bisection.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro import ButterflyFatTree, ButterflyFatTreeModel, Workload
from repro.core.generic_model import bft_stage_graph
from repro.core.throughput import saturation_injection_rate

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_perf.json"

#: Grid used by the batch-vs-scalar sweep benches (Figure-3-like range).
SWEEP_POINTS = 64
SWEEP_FLITS = 32
SWEEP_PROCESSORS = 1024


def _sweep_rates() -> np.ndarray:
    """64 injection rates spanning zero load to past saturation at N=1024."""
    return np.linspace(0.002, 0.05, SWEEP_POINTS) / SWEEP_FLITS


def bench_model_solve_1024() -> Callable[[], object]:
    model = ButterflyFatTreeModel(SWEEP_PROCESSORS)
    wl = Workload.from_flit_load(0.02, SWEEP_FLITS)
    return lambda: model.latency(wl)


def bench_batch_sweep_64pt_1024() -> Callable[[], object]:
    model = ButterflyFatTreeModel(SWEEP_PROCESSORS)
    rates = _sweep_rates()
    return lambda: model.latency_batch(rates, SWEEP_FLITS)


def bench_scalar_sweep_64pt_1024() -> Callable[[], object]:
    model = ButterflyFatTreeModel(SWEEP_PROCESSORS)
    workloads = [Workload(SWEEP_FLITS, float(x)) for x in _sweep_rates()]
    return lambda: [model.latency(wl) for wl in workloads]


def bench_saturation_vectorized_1024() -> Callable[[], object]:
    model = ButterflyFatTreeModel(SWEEP_PROCESSORS)
    return lambda: saturation_injection_rate(model, SWEEP_FLITS).flit_load


def bench_saturation_scalar_1024() -> Callable[[], object]:
    model = ButterflyFatTreeModel(SWEEP_PROCESSORS)
    return lambda: saturation_injection_rate(
        model, SWEEP_FLITS, vectorized=False
    ).flit_load


def bench_generic_graph_1024() -> Callable[[], object]:
    wl = Workload.from_flit_load(0.02, SWEEP_FLITS)
    return lambda: bft_stage_graph(SWEEP_PROCESSORS, wl).latency()


def bench_topology_build_1024() -> Callable[[], object]:
    return lambda: ButterflyFatTree(SWEEP_PROCESSORS)


BENCHES: dict[str, Callable[[], Callable[[], object]]] = {
    "model_solve_1024": bench_model_solve_1024,
    "batch_sweep_64pt_1024": bench_batch_sweep_64pt_1024,
    "scalar_sweep_64pt_1024": bench_scalar_sweep_64pt_1024,
    "saturation_vectorized_1024": bench_saturation_vectorized_1024,
    "saturation_scalar_1024": bench_saturation_scalar_1024,
    "generic_graph_1024": bench_generic_graph_1024,
    "topology_build_1024": bench_topology_build_1024,
}


def time_median(fn: Callable[[], object], *, repeats: int = 5, warmup: int = 1) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` timed runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def collect(*, repeats: int = 5) -> dict:
    """Run every bench and return the report mapping (see module docstring)."""
    benches = {}
    for name, setup in BENCHES.items():
        benches[name] = {"median_s": time_median(setup(), repeats=repeats)}
    derived = {
        "batch_sweep_speedup": (
            benches["scalar_sweep_64pt_1024"]["median_s"]
            / benches["batch_sweep_64pt_1024"]["median_s"]
        ),
        "saturation_speedup": (
            benches["saturation_scalar_1024"]["median_s"]
            / benches["saturation_vectorized_1024"]["median_s"]
        ),
    }
    return {
        "sweep_points": SWEEP_POINTS,
        "message_flits": SWEEP_FLITS,
        "num_processors": SWEEP_PROCESSORS,
        "repeats": repeats,
        "benches": benches,
        "derived": derived,
    }


def write_baseline(report: dict, output: Path) -> Path:
    """Write the JSON baseline (used headlessly and from bench_perf.py)."""
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return output


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON baseline path"
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per bench (median kept)"
    )
    args = parser.parse_args(argv)
    report = collect(repeats=args.repeats)
    path = write_baseline(report, args.output)
    print(f"wrote {path}")
    for name, entry in sorted(report["benches"].items()):
        print(f"  {name:30s} {entry['median_s'] * 1e3:10.3f} ms")
    for name, value in sorted(report["derived"].items()):
        print(f"  {name:30s} {value:10.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
