"""Headless performance benchmark runner.

Runs the engineering micro-benchmarks (no pytest, no simulators) and writes
the canonical perf baseline ``benchmarks/BENCH_perf.json`` — median
wall-clock seconds per bench plus derived speedup ratios — so each PR
leaves a machine-readable perf trajectory to compare against:

    PYTHONPATH=src python benchmarks/run_benchmarks.py

The same report is also persisted through the run registry (a ``bench``
:class:`repro.RunResult` under ``--registry``, default
``benchmarks/results/runs``), so perf baselines line up next to scenario
runs and diff with ``repro runs diff <id-or-latest> benchmarks/BENCH_perf.json``.

``--quick`` shrinks the grids (256-PE sweeps, a smaller design space) for
CI smoke runs; pair it with ``--output`` to keep the committed baseline
untouched.

The headline numbers guard the batch solver engine: a 64-point N=1024 load
sweep solved in one ``latency_batch`` pass versus the same grid looped
through scalar ``latency`` calls, the vectorized Eq. 26 saturation search
versus the scalar bracket-plus-bisection, and the design-space explorer's
candidate throughput (candidates evaluated per second, cold metrics
cache).  The serve/registry entries (from :mod:`bench_serve`) track the
scenario service: a cache hit versus a cold solve, and a selective
indexed registry query versus the linear JSONL scan.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro import ButterflyFatTree, ButterflyFatTreeModel, Workload
from repro.core.generic_model import bft_stage_graph
from repro.obs import METRICS
from repro.core.throughput import saturation_injection_rate
from repro.design import (
    DesignSpace,
    Requirements,
    bft_space,
    clear_metrics_cache,
    explore,
    hypercube_space,
)

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_perf.json"


@dataclass(frozen=True)
class BenchConfig:
    """Grid sizes shared by the benches (``quick`` shrinks them for CI)."""

    sweep_points: int = 64
    sweep_flits: int = 32
    sweep_processors: int = 1024
    design_bft_sizes: tuple[int, ...] = (16, 64)
    design_hypercube_dims: tuple[int, ...] = (4, 5)
    design_flits: tuple[int, ...] = (16, 32)
    design_patterns: tuple[str, ...] = ("uniform", "hotspot")
    registry_records: int = 10_000
    repeats: int = 5

    @classmethod
    def quick(cls) -> "BenchConfig":
        return cls(
            sweep_points=16,
            sweep_processors=256,
            design_bft_sizes=(16, 64),
            design_hypercube_dims=(4,),
            design_flits=(16,),
            design_patterns=("uniform", "hotspot"),
            registry_records=2_000,
            repeats=2,
        )


def _sweep_rates(cfg: BenchConfig) -> np.ndarray:
    """Injection rates spanning zero load to past saturation."""
    return np.linspace(0.002, 0.05, cfg.sweep_points) / cfg.sweep_flits


def bench_model_solve(cfg: BenchConfig) -> Callable[[], object]:
    model = ButterflyFatTreeModel(cfg.sweep_processors)
    wl = Workload.from_flit_load(0.02, cfg.sweep_flits)
    return lambda: model.latency(wl)


def bench_batch_sweep(cfg: BenchConfig) -> Callable[[], object]:
    model = ButterflyFatTreeModel(cfg.sweep_processors)
    rates = _sweep_rates(cfg)
    return lambda: model.latency_batch(rates, cfg.sweep_flits)


def bench_scalar_sweep(cfg: BenchConfig) -> Callable[[], object]:
    model = ButterflyFatTreeModel(cfg.sweep_processors)
    workloads = [Workload(cfg.sweep_flits, float(x)) for x in _sweep_rates(cfg)]
    return lambda: [model.latency(wl) for wl in workloads]


def bench_saturation_vectorized(cfg: BenchConfig) -> Callable[[], object]:
    model = ButterflyFatTreeModel(cfg.sweep_processors)
    return lambda: saturation_injection_rate(model, cfg.sweep_flits).flit_load


def bench_saturation_scalar(cfg: BenchConfig) -> Callable[[], object]:
    model = ButterflyFatTreeModel(cfg.sweep_processors)
    return lambda: saturation_injection_rate(
        model, cfg.sweep_flits, vectorized=False
    ).flit_load


def bench_generic_graph(cfg: BenchConfig) -> Callable[[], object]:
    wl = Workload.from_flit_load(0.02, cfg.sweep_flits)
    return lambda: bft_stage_graph(cfg.sweep_processors, wl).latency()


def bench_topology_build(cfg: BenchConfig) -> Callable[[], object]:
    return lambda: ButterflyFatTree(cfg.sweep_processors)


def design_space_for(cfg: BenchConfig) -> DesignSpace:
    """The design space the explorer bench searches."""
    return DesignSpace(
        families=(
            bft_space(cfg.design_bft_sizes),
            hypercube_space(cfg.design_hypercube_dims),
        ),
        message_lengths=cfg.design_flits,
        patterns=cfg.design_patterns,
    )


def bench_design_explore(cfg: BenchConfig) -> Callable[[], object]:
    """Full exploration, cold metrics cache each run.

    Flow propagation stays cached across runs (it is keyed per
    size/pattern, not per run), so this times the evaluation pipeline —
    batched latency solves, vectorized saturation searches, costing and
    selection — exactly what repeated explorations pay.
    """
    space = design_space_for(cfg)
    requirements = Requirements(demand_flit_load=0.02, latency_slo=75.0)

    def run() -> object:
        clear_metrics_cache()
        return explore(space, requirements)

    return run


def bench_serve_cold_solve(cfg: BenchConfig) -> Callable[[], object]:
    """A fresh solve of the service's bench scenario (the cache-miss cost)."""
    import bench_serve

    return bench_serve.cold_solve_bench()


def bench_serve_cached_lookup(cfg: BenchConfig) -> Callable[[], object]:
    """A cache hit against a large registry: index lookup + one record read."""
    import bench_serve

    return bench_serve.cached_solve_bench(
        bench_serve.seeded_registry(cfg.registry_records)
    )


def bench_registry_query_indexed(cfg: BenchConfig) -> Callable[[], object]:
    """Selective label query through the SQLite index."""
    import bench_serve

    return bench_serve.indexed_query_bench(
        bench_serve.seeded_registry(cfg.registry_records)
    )


def bench_registry_query_scan(cfg: BenchConfig) -> Callable[[], object]:
    """The same query as a linear JSONL scan (every record parsed)."""
    import bench_serve

    return bench_serve.scan_query_bench(
        bench_serve.seeded_registry(cfg.registry_records)
    )


BENCHES: dict[str, Callable[[BenchConfig], Callable[[], object]]] = {
    "model_solve": bench_model_solve,
    "batch_sweep": bench_batch_sweep,
    "scalar_sweep": bench_scalar_sweep,
    "saturation_vectorized": bench_saturation_vectorized,
    "saturation_scalar": bench_saturation_scalar,
    "generic_graph": bench_generic_graph,
    "topology_build": bench_topology_build,
    "design_explore": bench_design_explore,
    "serve_cold_solve": bench_serve_cold_solve,
    "serve_cached_lookup": bench_serve_cached_lookup,
    "registry_query_indexed": bench_registry_query_indexed,
    "registry_query_scan": bench_registry_query_scan,
}


def time_median(fn: Callable[[], object], *, repeats: int = 5, warmup: int = 1) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` timed runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def collect(*, repeats: int | None = None, quick: bool = False) -> dict:
    """Run every bench and return the report mapping (see module docstring)."""
    cfg = BenchConfig.quick() if quick else BenchConfig()
    if repeats is not None:
        cfg = dataclasses.replace(cfg, repeats=repeats)
    benches = {}
    for name, setup in BENCHES.items():
        fn = setup(cfg)
        entry = {"median_s": time_median(fn, repeats=cfg.repeats)}
        # One extra instrumented pass (outside the timed runs, so the
        # medians stay at disabled-observability cost) records how much
        # solver work each bench actually does — a perf regression shows
        # up as "same counters, more seconds" vs "more solves".
        with METRICS.collect() as telemetry:
            fn()
        counters = telemetry.data.get("counters", {})
        entry["counters"] = {
            key: counters[key]
            for key in sorted(counters)
            if key.startswith(
                ("solve.", "fixed_point.", "design.", "serve.", "index.", "registry.")
            )
        }
        benches[name] = entry
    n_candidates = len(design_space_for(cfg).candidates())
    derived = {
        "batch_sweep_speedup": (
            benches["scalar_sweep"]["median_s"] / benches["batch_sweep"]["median_s"]
        ),
        "saturation_speedup": (
            benches["saturation_scalar"]["median_s"]
            / benches["saturation_vectorized"]["median_s"]
        ),
        "design_candidates_per_s": (
            n_candidates / benches["design_explore"]["median_s"]
        ),
        "serve_cache_speedup": (
            benches["serve_cold_solve"]["median_s"]
            / benches["serve_cached_lookup"]["median_s"]
        ),
        "index_query_speedup": (
            benches["registry_query_scan"]["median_s"]
            / benches["registry_query_indexed"]["median_s"]
        ),
    }
    return {
        "quick": quick,
        "sweep_points": cfg.sweep_points,
        "message_flits": cfg.sweep_flits,
        "num_processors": cfg.sweep_processors,
        "design_candidates": n_candidates,
        "registry_records": cfg.registry_records,
        "repeats": cfg.repeats,
        "benches": benches,
        "derived": derived,
    }


def write_baseline(report: dict, output: Path) -> Path:
    """Write the JSON baseline (used headlessly and from bench_perf.py)."""
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return output


def record_in_registry(report: dict, registry_dir: Path | None) -> str:
    """Persist the report as a ``bench`` run record; returns the run id."""
    from repro.runs import RunRegistry, RunResult

    label = "bench-quick" if report.get("quick") else "bench"
    result = RunResult.for_metrics(report, kind="bench", label=label)
    registry = RunRegistry(registry_dir)
    registry.save(result)
    return result.run_id


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON baseline path"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timed runs per bench (median kept)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grids for CI smoke runs (256-PE sweeps, reduced design space)",
    )
    parser.add_argument(
        "--registry",
        type=Path,
        default=None,
        help="run-registry directory the report is also recorded in "
        "(default: benchmarks/results/runs); --no-registry skips it",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="do not record the report in the run registry",
    )
    args = parser.parse_args(argv)
    report = collect(repeats=args.repeats, quick=args.quick)
    path = write_baseline(report, args.output)
    print(f"wrote {path}")
    if not args.no_registry:
        run_id = record_in_registry(report, args.registry)
        print(f"recorded in run registry as {run_id}")
    for name, entry in sorted(report["benches"].items()):
        print(f"  {name:30s} {entry['median_s'] * 1e3:10.3f} ms")
    for name, value in sorted(report["derived"].items()):
        unit = "x" if name.endswith("_speedup") else "/s"
        print(f"  {name:30s} {value:10.1f}{unit}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
