"""Bench GFT — generalized fat-trees: M/G/p queues beyond the paper.

Realizes the conclusion's claim ("the framework can be extended for
networks that require queuing models with more than two servers") and
validates it against simulation.  Results land in
``benchmarks/results/generalized.txt``.
"""

from __future__ import annotations

import math

from conftest import register_result

from repro.experiments import run_generalized, write_report


def test_generalized_fat_trees(benchmark):
    """Every (c, p) family member must validate within a few percent."""
    result = benchmark.pedantic(run_generalized, rounds=1, iterations=1)
    path = write_report("generalized", result.render())
    register_result(path)
    worst = 0.0
    sat_by_parents: dict[int, float] = {}
    for row in result.rows:
        if math.isfinite(row.rel_err):
            worst = max(worst, abs(row.rel_err))
        if row.children == 4 and row.levels == result.rows[0].levels:
            sat_by_parents[row.parents] = row.model_saturation
    benchmark.extra_info["worst_abs_rel_err"] = worst
    assert worst < 0.08, f"worst relative error {worst:.1%}"
    # Up-link redundancy must buy saturation throughput monotonically.
    parents = sorted(sat_by_parents)
    sats = [sat_by_parents[p] for p in parents]
    assert sats == sorted(sats)
