"""Bench GEN — the general model on other networks (abstract's claim).

Applies the Section-2 framework to a binary hypercube and compares it,
against simulation, with the Draper–Ghosh-style prior-art baseline; also
sanity-checks the Dally torus baseline at low load.  Results land in
``benchmarks/results/other_networks.txt``.
"""

from __future__ import annotations

import math

import numpy as np
from conftest import register_result

from repro.experiments import run_other_networks, write_report


def test_other_networks(benchmark):
    """The corrected general model must beat the uncorrected baseline."""
    result = benchmark.pedantic(run_other_networks, rounds=1, iterations=1)
    path = write_report("other_networks", result.render())
    register_result(path)
    gen = [abs(r.general_err) for r in result.hypercube_rows if math.isfinite(r.general_err)]
    base = [abs(r.baseline_err) for r in result.hypercube_rows if math.isfinite(r.baseline_err)]
    benchmark.extra_info["hypercube_general_mean_err"] = float(np.mean(gen))
    benchmark.extra_info["hypercube_baseline_mean_err"] = (
        float(np.mean(base)) if base else math.inf
    )
    assert float(np.mean(gen)) < 0.08
    assert float(np.mean(gen)) < (float(np.mean(base)) if base else math.inf)
    # Torus rows must be deadlock-free at these low loads.
    assert all(r.censored == 0 for r in result.torus_rows)
