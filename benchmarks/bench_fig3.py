"""Bench FIG3 — regenerate Figure 3 (latency vs load, N=1024, 16/32/64 flits).

Quick mode samples 7 loads per curve with short measurement windows; set
``REPRO_FULL=1`` for paper-scale windows and 10-point grids.  The rendered
table and ASCII curves land in ``benchmarks/results/fig3.txt``.
"""

from __future__ import annotations

import math

from conftest import register_result

from repro.experiments import run_fig3, write_report


def test_fig3_reproduction(benchmark):
    """Latency-vs-load curves must agree below saturation (Figure 3)."""
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    path = write_report("fig3", result.render())
    register_result(path)
    for series in result.series:
        err = series.mean_abs_error_below(0.9)
        benchmark.extra_info[f"mean_abs_err_{series.message_flits}f"] = err
        benchmark.extra_info[f"model_sat_{series.message_flits}f"] = (
            series.model_saturation
        )
        # The paper's central claim: close agreement over a wide load range.
        assert math.isfinite(err)
        assert err < 0.08, f"{series.message_flits}-flit curve off by {err:.1%}"
