"""Bench THRU — saturation throughput table, model vs simulation.

Regenerates the comparison behind the paper's claim of accurate throughput
prediction (Sections 3.5-3.6).  The model's Eq. 26 point is expected to be
accurate-to-conservative: the measured band is recorded in
``benchmarks/results/throughput.txt`` and EXPERIMENTS.md.
"""

from __future__ import annotations

from conftest import register_result

from repro.experiments import run_throughput_table, write_report


def test_throughput_table(benchmark):
    """Model saturation must land within the simulator's saturation band."""
    result = benchmark.pedantic(run_throughput_table, rounds=1, iterations=1)
    path = write_report("throughput", result.render())
    register_result(path)
    for row in result.rows:
        key = f"N{row.num_processors}_F{row.message_flits}"
        benchmark.extra_info[key] = {
            "model": row.model_saturation,
            "sim": row.sim_saturation,
        }
        ratio = row.sim_saturation / row.model_saturation
        assert 0.75 < ratio < 1.8, (
            f"N={row.num_processors} F={row.message_flits}: "
            f"sim/model saturation ratio {ratio:.2f} out of band"
        )
