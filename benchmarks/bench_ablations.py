"""Bench ABL — ablations of the model's design choices.

Quantifies the paper's two novelties (multi-server queues, blocking
correction) plus the SCV and climb-probability choices, by scoring every
model variant against one shared set of simulation runs.  Results land in
``benchmarks/results/ablations.txt``.
"""

from __future__ import annotations

from conftest import register_result

from repro.experiments import run_ablations, write_report


def test_ablations(benchmark):
    """The published configuration must beat both single-novelty ablations."""
    result = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    path = write_report("ablations", result.render())
    register_result(path)
    by_name = {r.variant: r for r in result.rows}
    for row in result.rows:
        benchmark.extra_info[row.variant] = row.mean_abs_err
    paper = by_name["paper"].mean_abs_err
    assert paper < 0.08, f"paper-variant error {paper:.1%}"
    assert paper < by_name["no-multiserver"].mean_abs_err
    assert paper < by_name["naive"].mean_abs_err
    assert paper < by_name["no-blocking-correction"].mean_abs_err
