"""Bench BUF — router-buffering sensitivity and dateline-VC torus.

Quantifies the blocked-in-place abstraction the paper's model rests on:
B=2 input buffers must track the model, B=1 must exhibit the credit-loop
throughput collapse, and the 2-VC dateline torus must run deadlock-free
where the VC-less simulators (correctly) deadlock.  Results land in
``benchmarks/results/buffering.txt``.
"""

from __future__ import annotations

import math

from conftest import register_result

from repro.experiments import run_buffering, write_report


def test_buffering_sensitivity(benchmark):
    """B=2 matches the model; B=1 collapses; dateline VCs kill deadlock."""
    result = benchmark.pedantic(run_buffering, rounds=1, iterations=1)
    path = write_report("buffering", result.render())
    register_result(path)
    for row in result.rows:
        # B=2 tracks the blocked-in-place simulator closely.
        b2 = row.buffered[2]
        assert math.isfinite(b2)
        assert abs(b2 - row.event_sim_latency) / row.event_sim_latency < 0.06
        # B=1 halves hop bandwidth -> visibly worse at any load.
        assert row.buffered[1] > b2 * 1.3
        # Deeper buffers never hurt.
        assert row.buffered[8] <= b2 * 1.02
    for trow in result.torus_rows:
        assert trow.vc_censored == 0, "dateline VCs must remove deadlock"
        assert trow.novc_censored > 0, "VC-less torus should deadlock at this load"
    benchmark.extra_info["depths"] = list(result.depths)
