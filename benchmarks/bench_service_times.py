"""Bench SVC — per-channel audit of the model's internal quantities.

Empirically verifies Eq. 14 (per-class arrival rates) and Eqs. 16-24
(per-class mean service times) against the simulator's per-acquisition
holding times — a line-by-line check of Sections 3.2-3.3, stronger than
the end-to-end Figure-3 agreement.  Results land in
``benchmarks/results/service_times.txt``.
"""

from __future__ import annotations

import math

from conftest import register_result

from repro.experiments import run_service_times, write_report


def test_service_time_audit(benchmark):
    """Every channel class must match in rate (Eq. 14) and x_bar (Eqs. 16-24)."""
    result = benchmark.pedantic(run_service_times, rounds=1, iterations=1)
    path = write_report("service_times", result.render())
    register_result(path)
    for row in result.rows:
        assert math.isfinite(row.sim_service), row.channel
        assert abs(row.rate_err) < 0.05, f"{row.channel}: rate off {row.rate_err:.1%}"
        assert abs(row.service_err) < 0.05, (
            f"{row.channel}: service time off {row.service_err:.1%}"
        )
    # Eq. 16: the ejection channel's service time is exactly the worm length.
    eject = next(r for r in result.rows if r.channel == "<1,0>")
    assert eject.sim_service == result.message_flits
    benchmark.extra_info["worst_service_err"] = result.worst_service_error()
