"""Bench XVAL — cross-validation of the two simulators.

Drives the event-driven and flit-level simulators with shared integer
arrival traces; message counts must match exactly and mean latencies within
a few percent.  Results land in ``benchmarks/results/crosscheck.txt``.
"""

from __future__ import annotations

import math

from conftest import register_result

from repro.experiments import run_crosscheck, write_report


def test_simulator_crosscheck(benchmark):
    """Two independent wormhole implementations must agree."""
    result = benchmark.pedantic(run_crosscheck, rounds=1, iterations=1)
    path = write_report("crosscheck", result.render())
    register_result(path)
    for row in result.rows:
        key = f"N{row.num_processors}_load{row.flit_load}"
        benchmark.extra_info[key] = row.rel_diff
        assert row.event_delivered == row.flit_delivered
        assert math.isfinite(row.rel_diff)
        assert abs(row.rel_diff) < 0.04
